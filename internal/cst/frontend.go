package cst

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/omc"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Reason classifies why a version was sent to the OMC, feeding the paper's
// Fig 15 evict-reason decomposition.
type Reason int

// Version write-back reasons.
const (
	ReasonCapacity   Reason = iota // L2 LRU victim
	ReasonCoherence                // inter-VD invalidation / downgrade
	ReasonWalk                     // tag-walker write-back
	ReasonStoreEvict               // store-eviction displaced an old version out of L2
	ReasonDrain                    // end-of-run flush
	numReasons
)

// String names the reason.
func (r Reason) String() string {
	switch r {
	case ReasonCapacity:
		return "capacity"
	case ReasonCoherence:
		return "coherence"
	case ReasonWalk:
		return "walk"
	case ReasonStoreEvict:
		return "storeevict"
	case ReasonDrain:
		return "drain"
	default:
		return fmt.Sprintf("reason%d", int(r))
	}
}

// Backend is the MNM side of NVOverlay as seen by the frontend; *omc.Group
// implements it. The returned cycles are NVM backpressure charged to the
// access that triggered the traffic.
type Backend interface {
	ReceiveVersion(v omc.Version, now uint64) uint64
	ReportMinVer(vd int, ver uint64, now uint64)
	// LowerMinVer conservatively lowers a VD's standing min-ver when a
	// dirty old version migrates into it via cache-to-cache transfer.
	LowerMinVer(vd int, ver uint64, now uint64)
	DumpContext(vd int, epoch, now uint64) uint64
}

// Result reports one access's outcome. Lat is charged to the issuing
// thread; VDStall additionally stalls every core of the VD (epoch advances
// drain and stall the whole domain, §IV-B2). StoreOID is the epoch tag the
// version access protocol assigned to a store (0 for loads); differential
// verification feeds it to the golden shadow-memory model so the golden
// image can be versioned exactly as the hardware versioned the write.
type Result struct {
	Lat      uint64
	VDStall  uint64
	StoreOID uint64
}

// Frontend is the version-tagged cache hierarchy of NVOverlay: per-core
// L1s and per-VD inclusive L2s running the version access protocol, over a
// non-inclusive victim LLC. Snapshot versions leaving a VD go to the
// Backend via the LLC-bypass path.
type Frontend struct {
	cfg     *sim.Config
	backend Backend
	dram    *mem.DRAM

	l1  []*cache.Cache
	l2  []*cache.Cache
	llc []*cache.Cache
	dir *cache.Directory

	cur       []uint64 // per-VD current epoch (starts at 1)
	storeCnt  []int    // stores in the current epoch, per VD
	totStores []uint64 // lifetime stores per VD (epoch-size schedule input)

	// Opportunistic tag walker state (§IV-C): at an epoch advance the
	// walker snapshots the VD's stale dirty versions (legal: they are
	// immutable) and drains them to the OMC a few per subsequent access,
	// spreading the write-back bandwidth across the epoch instead of
	// bursting at the boundary. min-ver is reported once the queue drains.
	walkQ      [][]cache.Line
	walkReport []uint64 // epoch to report once walkQ[vd] empties (0 = none)
	// dirtyInflow marks VDs that received a dirty cache-to-cache transfer
	// of an old epoch since their last tag walk. A walk cleans every dirty
	// line older than cur, and stores only dirty lines at cur, so such a
	// transfer is the only way a stale dirty version can exist at min-ver
	// report time: when the flag is clear the report is provably cur and
	// the walker skips the full L1+L2 rescan (the dominant cost of
	// coherence-driven advances at 64+ domains). CheckInvariants
	// cross-checks the claim against the actual cache contents.
	dirtyInflow []bool
	walker      bool
	wrap        *WrapSpace
	wrapFlush   int // group-transition flushes performed

	// Transient per-access accounting.
	now      uint64
	stall    uint64
	vdStall  uint64
	storeOID uint64

	evicts [numReasons]uint64
	stat   *stats.Set
	bus    *obs.Bus // nil when the run is unobserved
}

// New builds the frontend. The tag walker is enabled per cfg.TagWalker; the
// wrap-around protocol per cfg.WrapEpochs.
func New(cfg *sim.Config, dram *mem.DRAM, backend Backend) *Frontend {
	f := &Frontend{
		cfg:         cfg,
		backend:     backend,
		dram:        dram,
		l1:          make([]*cache.Cache, cfg.Cores),
		l2:          make([]*cache.Cache, cfg.VDs()),
		llc:         make([]*cache.Cache, cfg.LLCSlices),
		dir:         cache.NewDirectory(),
		cur:         make([]uint64, cfg.VDs()),
		storeCnt:    make([]int, cfg.VDs()),
		totStores:   make([]uint64, cfg.VDs()),
		walkQ:       make([][]cache.Line, cfg.VDs()),
		walkReport:  make([]uint64, cfg.VDs()),
		dirtyInflow: make([]bool, cfg.VDs()),
		walker:      cfg.TagWalker,
		stat:        stats.NewSet("cst"),
		bus:         cfg.Obs,
	}
	for i := range f.l1 {
		f.l1[i] = cache.New(fmt.Sprintf("l1.%d", i), cfg.L1Size, cfg.L1Ways, cfg.LineSize)
	}
	for i := range f.l2 {
		f.l2[i] = cache.New(fmt.Sprintf("l2.%d", i), cfg.L2Size, cfg.L2Ways, cfg.LineSize)
	}
	sliceSize := cfg.LLCSize / cfg.LLCSlices
	for i := range f.llc {
		f.llc[i] = cache.NewStrided(fmt.Sprintf("llc.%d", i), sliceSize, cfg.LLCWays,
			cfg.LineSize, cfg.LLCSlices)
	}
	for vd := range f.cur {
		f.cur[vd] = 1 // epoch 0 is reserved as "before all snapshots"
	}
	if cfg.WrapEpochs {
		f.wrap = NewWrapSpace(cfg.WrapWidth)
	}
	return f
}

// CurEpoch returns a VD's current epoch.
func (f *Frontend) CurEpoch(vd int) uint64 { return f.cur[vd] }

// Stats returns the frontend counter set.
func (f *Frontend) Stats() *stats.Set { return f.stat }

// EvictReason returns how many versions were sent to the OMC for a reason.
func (f *Frontend) EvictReason(r Reason) uint64 { return f.evicts[r] }

// L1 exposes core tid's L1 (tests and the walker use it).
func (f *Frontend) L1(tid int) *cache.Cache { return f.l1[tid] }

// L2 exposes VD vd's L2.
func (f *Frontend) L2(vd int) *cache.Cache { return f.l2[vd] }

// LLCSlice exposes LLC slice i.
func (f *Frontend) LLCSlice(i int) *cache.Cache { return f.llc[i] }

// WrapFlushes returns how many group-transition flushes occurred.
func (f *Frontend) WrapFlushes() int { return f.wrapFlush }

func (f *Frontend) sliceOf(addr uint64) *cache.Cache {
	return f.llc[int((addr/uint64(f.cfg.LineSize))%uint64(len(f.llc)))]
}

// entry resolves addr's directory entry, creating it on first touch. The
// pointer is valid until the next GetOrCreate (miss paths resolve it once
// per access and finish with it before installing new lines).
func (f *Frontend) entry(addr uint64) *cache.DirEntry {
	return f.dir.GetOrCreate(addr)
}

func (f *Frontend) coresOf(vd int) (int, int) {
	return vd * f.cfg.CoresPerVD, (vd + 1) * f.cfg.CoresPerVD
}

// debugSendHook, when non-nil, observes every version send (test-only).
var debugSendHook func(ln cache.Line, reason Reason)

// sendVersion ships a dirty version to the OMC over the LLC-bypass path.
func (f *Frontend) sendVersion(ln cache.Line, reason Reason) {
	if debugSendHook != nil {
		debugSendHook(ln, reason)
	}
	f.evicts[reason]++
	f.stat.Inc("evict_" + reason.String())
	f.bus.Emit(obs.KindVersionEvict, f.now+f.stall, -1, ln.OID, ln.Tag, uint64(reason), 0)
	// Bursts (walks, drains) issue at f.now advanced by the stalls already
	// incurred in this access, so a full NVM queue delays a burst linearly
	// (a blocking bounded queue), not quadratically.
	st := f.backend.ReceiveVersion(omc.Version{Addr: ln.Tag, Epoch: ln.OID, Data: ln.Data}, f.now+f.stall)
	f.stall += st
	f.stat.Add("stall_from_versions", int64(st))
}

// Access performs one memory operation and returns its timing. data is the
// payload token written by stores (ignored for loads).
func (f *Frontend) Access(tid int, addr uint64, write bool, data uint64, now uint64) Result {
	addr = f.cfg.LineAddr(addr)
	f.now = now
	f.stall = 0
	f.vdStall = 0
	f.storeOID = 0
	var lat uint64
	if write {
		lat = f.store(tid, addr, data)
	} else {
		lat = f.load(tid, addr)
	}
	f.drainWalk(f.cfg.VDOf(tid))
	return Result{Lat: lat + f.stall, VDStall: f.vdStall, StoreOID: f.storeOID}
}

// walkDrainRate is how many pending walk write-backs the opportunistic
// walker retires per access of its VD.
const walkDrainRate = 4

// flushQueuedWalk immediately ships any queued walk version of addr held
// by vd's walker. Called before the address is handed to another VD
// (invalidation/downgrade): the other domain may produce a newer version
// of the same epoch, and the OMC's per-epoch tables keep the last receipt,
// so the queued copy must be ordered before the transfer.
func (f *Frontend) flushQueuedWalk(vd int, addr uint64) {
	q := f.walkQ[vd]
	for i := 0; i < len(q); i++ {
		if q[i].Tag == addr {
			f.sendVersion(q[i], ReasonWalk)
			f.dram.WriteBack(q[i].Tag, q[i].OID, q[i].Data)
			f.walkQ[vd] = append(q[:i], q[i+1:]...)
			if len(f.walkQ[vd]) == 0 && f.walkReport[vd] != 0 {
				f.reportMinVer(vd)
			}
			return
		}
	}
}

// drainWalk ships a few queued walk versions and reports min-ver when the
// backlog empties.
func (f *Frontend) drainWalk(vd int) {
	if len(f.walkQ[vd]) == 0 {
		return
	}
	n := walkDrainRate
	if n > len(f.walkQ[vd]) {
		n = len(f.walkQ[vd])
	}
	for _, ln := range f.walkQ[vd][:n] {
		f.sendVersion(ln, ReasonWalk)
		f.dram.WriteBack(ln.Tag, ln.OID, ln.Data)
	}
	f.walkQ[vd] = f.walkQ[vd][n:]
	if len(f.walkQ[vd]) == 0 && f.walkReport[vd] != 0 {
		f.reportMinVer(vd)
	}
}

// reportMinVer sends the VD's min-ver as the smallest version OID still
// unpersisted in the domain *right now* (§IV-C: "updated to the smallest
// version OID encountered"). Rescanning at report time matters: a dirty
// old version may have migrated in via cache-to-cache transfer after the
// walk snapshotted the tags, and the report must not claim it persisted.
func (f *Frontend) reportMinVer(vd int) {
	min := f.cur[vd]
	if f.dirtyInflow[vd] {
		// A stale dirty version may have migrated in since the last walk:
		// rescan for the true minimum. Without inflow the scan is provably
		// a no-op (every dirty line is tagged cur) and is skipped.
		scan := func(ln *cache.Line) {
			if ln.Dirty && ln.OID < min {
				min = ln.OID
			}
		}
		lo, hi := f.coresOf(vd)
		for c := lo; c < hi; c++ {
			f.l1[c].ForEach(scan)
		}
		f.l2[vd].ForEach(scan)
	}
	for _, q := range f.walkQ[vd] {
		if q.OID < min {
			min = q.OID
		}
	}
	f.bus.Emit(obs.KindWalkEnd, f.now, vd, f.walkReport[vd], 0, min, 0)
	f.walkReport[vd] = 0
	f.backend.ReportMinVer(vd, min, f.now)
}

// ---------------------------------------------------------------------------
// Loads (§IV-A1: lookup ignores the OID tag)

func (f *Frontend) load(tid int, addr uint64) uint64 {
	vd := f.cfg.VDOf(tid)
	lat := f.cfg.L1Latency
	if ln := f.l1[tid].Lookup(addr); ln != nil {
		f.stat.Inc("l1_load_hits")
		return lat
	}
	lat += f.cfg.L2Latency
	if l2ln := f.l2[vd].Lookup(addr); l2ln != nil {
		f.stat.Inc("l2_load_hits")
		// Sibling downgrade inside the VD; the sibling's dirty version flows
		// through the L2 with the version check (it may displace an older
		// dirty version to the OMC).
		sibling := false
		lo, hi := f.coresOf(vd)
		for c := lo; c < hi; c++ {
			if c == tid {
				continue
			}
			if sib := f.l1[c].Peek(addr); sib != nil {
				sibling = true
				if sib.Dirty {
					f.mergeIntoL2(l2ln, *sib)
					sib.Dirty = false
				}
				sib.State = cache.Shared
			}
		}
		f.maybeAdvance(vd, l2ln.OID)
		state := cache.Shared
		if l2ln.State != cache.Shared && !sibling {
			state = cache.Exclusive
		}
		f.fillL1(tid, addr, state, l2ln.OID, l2ln.Data, false)
		return lat
	}
	lat += f.cfg.LLCLatency
	rv, data, extra := f.fetch(vd, addr, false)
	lat += extra
	f.maybeAdvance(vd, rv)
	e := f.entry(addr)
	state := cache.Shared
	if e.Sharers.Only(vd) && e.Owner == -1 {
		state = cache.Exclusive
		e.Sharers = cache.SharerSet{}
		e.Owner = vd
		// An Exclusive grant means no other cached copy may remain: drop
		// the LLC copy (the VD may silently write newer data in place).
		// Its dirty-toward-DRAM marker is honoured first.
		if ln := f.sliceOf(addr).Peek(addr); ln != nil {
			if ln.Dirty {
				f.dram.WriteBack(ln.Tag, ln.OID, ln.Data)
				f.stat.Inc("llc_dram_writebacks")
			}
			f.sliceOf(addr).Invalidate(addr)
		}
	}
	f.fillL2(vd, addr, state, rv, data)
	f.fillL1(tid, addr, state, rv, data, false)
	return lat
}

// ---------------------------------------------------------------------------
// Stores (§IV-A1: version access protocol with store-eviction)

func (f *Frontend) store(tid int, addr uint64, data uint64) uint64 {
	vd := f.cfg.VDOf(tid)
	lat := f.cfg.L1Latency
	if ln := f.l1[tid].Lookup(addr); ln != nil && ln.State.Writable() {
		f.stat.Inc("l1_store_hits")
		f.performStore(tid, vd, ln, data)
		f.bumpStore(vd)
		return lat
	}
	lat += f.cfg.L2Latency
	if l2ln := f.l2[vd].Lookup(addr); l2ln != nil && l2ln.State.Writable() {
		f.stat.Inc("l2_store_hits")
		lo, hi := f.coresOf(vd)
		for c := lo; c < hi; c++ {
			if c == tid {
				continue
			}
			if removed, ok := f.l1[c].Invalidate(addr); ok && removed.Dirty {
				f.mergeIntoL2(l2ln, removed)
			}
		}
		f.maybeAdvance(vd, l2ln.OID)
		l2ln.State = cache.Modified
		// The L1 is filled with a clean copy; the L2 retains any dirty
		// version (the new store will create a fresh version in the L1).
		f.fillL1(tid, addr, cache.Exclusive, l2ln.OID, l2ln.Data, false)
		ln := f.l1[tid].Peek(addr)
		f.performStore(tid, vd, ln, data)
		f.bumpStore(vd)
		return lat
	}
	lat += f.cfg.LLCLatency
	rv, rdata, dirtyXfer, extra := f.fetchExclusive(vd, addr)
	lat += extra
	f.maybeAdvance(vd, rv)
	if dirtyXfer && rv < f.cur[vd] {
		// An unpersisted version of a closed epoch just migrated into this
		// VD; hold the recoverable epoch below it until our next walk.
		f.backend.LowerMinVer(vd, rv, f.now)
		f.dirtyInflow[vd] = true
	}
	lo, hi := f.coresOf(vd)
	for c := lo; c < hi; c++ {
		if c == tid {
			continue
		}
		f.l1[c].Invalidate(addr)
	}
	e := f.entry(addr)
	e.Sharers = cache.SharerSet{}
	e.Owner = vd
	// The L2 always receives a clean copy (inclusion); a dirty
	// cache-to-cache transfer lands in the requestor's L1 still dirty.
	f.fillL2(vd, addr, cache.Modified, rv, rdata)
	f.fillL1(tid, addr, cache.Exclusive, rv, rdata, dirtyXfer)
	ln := f.l1[tid].Peek(addr)
	f.performStore(tid, vd, ln, data)
	f.bumpStore(vd)
	return lat
}

// performStore applies the version access protocol to a writable L1 line.
func (f *Frontend) performStore(tid, vd int, ln *cache.Line, data uint64) {
	cur := f.cur[vd]
	if ln.Dirty && ln.OID != cur {
		// Immutable dirty version from a previous epoch: store-eviction
		// (paper Fig 4) pushes it to the L2 without invalidating the line,
		// then the store proceeds in place.
		f.stat.Inc("store_evictions")
		f.putxToL2(vd, *ln, ReasonStoreEvict)
	}
	ln.OID = cur
	ln.Data = data
	ln.Dirty = true
	ln.State = cache.Modified
	f.storeOID = cur
}

// bumpStore counts a store toward the VD's epoch budget and advances the
// local epoch at the boundary (§IV-B2 "advance after a fixed number of
// instructions").
func (f *Frontend) bumpStore(vd int) {
	f.storeCnt[vd]++
	f.totStores[vd]++
	// Each VD advances after EpochSize of its own stores (§IV-B2); with
	// coherence-driven synchronisation the machine-wide snapshot rate then
	// lands close to the baselines' one-epoch-per-EpochSize-global-stores.
	threshold := f.cfg.EpochSizeAt(f.totStores[vd] * uint64(f.cfg.VDs()))
	if threshold < 1 {
		threshold = 1
	}
	if f.storeCnt[vd] >= threshold {
		f.advanceTo(vd, f.cur[vd]+1, true)
	}
}

// maybeAdvance applies coherence-driven epoch synchronisation (§IV-B2):
// observing a response of a future epoch advances the local Lamport clock.
func (f *Frontend) maybeAdvance(vd int, rv uint64) {
	if rv > f.cur[vd] {
		f.stat.Inc("coherence_epoch_advances")
		f.advanceTo(vd, rv, false)
	}
}

// advanceTo terminates the VD's current epoch: cores stall and drain, the
// processor context is dumped to NVM, and (at store-count boundaries) the
// tag walker runs.
func (f *Frontend) advanceTo(vd int, newEpoch uint64, boundary bool) {
	old := f.cur[vd]
	var atBoundary uint64
	if boundary {
		atBoundary = 1
	}
	f.bus.Emit(obs.KindEpochAdvance, f.now, vd, newEpoch, 0, old, atBoundary)
	if f.wrap != nil && f.wrap.CrossesGroup(f.wrap.Wire(old), f.wrap.Wire(newEpoch)) {
		// Group transition (§IV-D): ensure no line remains tagged with an
		// epoch of the group being entered, then flip the sense bit. With
		// monotonic simulation epochs a full VD flush of old dirty versions
		// is the conservative realisation.
		f.flushVDVersions(vd, newEpoch)
		f.wrap.OnGroupTransition(f.wrap.Wire(newEpoch))
		f.wrapFlush++
	}
	f.cur[vd] = newEpoch
	if boundary {
		// Only a store-count boundary resets the local budget; a
		// coherence-driven jump does not, so each VD still contributes one
		// boundary per EpochSize of its own stores and the machine-wide
		// snapshot rate matches the baselines' global counting.
		f.storeCnt[vd] = 0
	}
	f.vdStall += f.cfg.EpochAdvanceCost
	ctxStall := f.backend.DumpContext(vd, old, f.now+f.stall+f.vdStall)
	f.vdStall += ctxStall
	f.stat.Add("stall_from_context", int64(ctxStall))
	f.stat.Inc("epoch_advances")
	// The walker runs opportunistically whenever an epoch closes — both at
	// store-count boundaries and on coherence-driven advances — so every VD
	// keeps reporting min-ver and the recoverable epoch makes progress even
	// for domains that rarely hit their own store threshold.
	if f.walker {
		f.tagWalk(vd)
	}
}

// tagWalk snapshots every dirty version in the VD older than cur-epoch
// (§IV-C) into the walker's queue; the versions drain to the OMC over the
// VD's subsequent accesses and min-ver is reported when the queue empties.
// Walked lines are downgraded M->E in place (they are immutable, so the
// queued copies are exactly the epoch's values); stale L1 versions are
// first pulled into the L2 so the L2 holds the newest old version.
func (f *Frontend) tagWalk(vd int) {
	cur := f.cur[vd]
	lo, hi := f.coresOf(vd)
	for c := lo; c < hi; c++ {
		f.l1[c].ForEach(func(ln *cache.Line) {
			if ln.Dirty && ln.OID < cur {
				f.putxToL2(vd, *ln, ReasonWalk)
				ln.Dirty = false
				if ln.State == cache.Modified {
					ln.State = cache.Exclusive
				}
			}
		})
	}
	f.l2[vd].ForEach(func(ln *cache.Line) {
		if ln.Dirty && ln.OID < cur {
			f.walkQ[vd] = append(f.walkQ[vd], *ln)
			ln.Dirty = false
			if ln.State == cache.Modified {
				ln.State = cache.Exclusive
			}
		}
	})
	f.stat.Inc("tag_walks")
	// Every dirty line older than cur was just cleaned: any prior dirty
	// inflow has been walked out of the domain.
	f.dirtyInflow[vd] = false
	f.walkReport[vd] = cur
	f.bus.Emit(obs.KindWalkStart, f.now, vd, cur, 0, uint64(len(f.walkQ[vd])), 0)
	if len(f.walkQ[vd]) == 0 {
		// Nothing left to persist: report immediately.
		f.reportMinVer(vd)
	}
}

// flushVDVersions drains every dirty version older than newEpoch out of the
// VD (used by the wrap-around group transition).
func (f *Frontend) flushVDVersions(vd int, newEpoch uint64) {
	lo, hi := f.coresOf(vd)
	for c := lo; c < hi; c++ {
		f.l1[c].ForEach(func(ln *cache.Line) {
			if ln.Dirty && ln.OID < newEpoch {
				f.putxToL2(vd, *ln, ReasonDrain)
				ln.Dirty = false
			}
		})
	}
	f.l2[vd].ForEach(func(ln *cache.Line) {
		if ln.Dirty && ln.OID < newEpoch {
			f.sendVersion(*ln, ReasonDrain)
			f.dram.WriteBack(ln.Tag, ln.OID, ln.Data)
			ln.Dirty = false
		}
	})
}

// ---------------------------------------------------------------------------
// L2 version handling

// mergeIntoL2 folds an L1 dirty version into a resident L2 line, evicting
// the L2's older dirty version to the OMC first (§IV-A2's PUTX rule; the
// "skip LLC" optimisation of §IV-A3 applies: the old version is not the
// current image, so only the OMC needs it).
func (f *Frontend) mergeIntoL2(l2ln *cache.Line, l1ln cache.Line) {
	if l2ln.Dirty && l2ln.OID < l1ln.OID {
		f.sendVersion(*l2ln, ReasonStoreEvict)
	}
	l2ln.OID = l1ln.OID
	l2ln.Data = l1ln.Data
	l2ln.Dirty = true
	l2ln.State = cache.Modified
}

// putxToL2 delivers an L1 dirty version to the L2, inserting the line if it
// is somehow absent (inclusion normally guarantees presence).
func (f *Frontend) putxToL2(vd int, l1ln cache.Line, reason Reason) {
	if l2ln := f.l2[vd].Peek(l1ln.Tag); l2ln != nil {
		if l2ln.Dirty && l2ln.OID < l1ln.OID {
			f.sendVersion(*l2ln, reason)
		}
		l2ln.OID = l1ln.OID
		l2ln.Data = l1ln.Data
		l2ln.Dirty = true
		l2ln.State = cache.Modified
		return
	}
	ln, victim, evicted := f.l2[vd].Insert(l1ln.Tag)
	if evicted {
		f.evictL2Victim(vd, victim, ReasonCapacity)
	}
	*ln = cache.Line{Valid: true, Tag: l1ln.Tag, State: cache.Modified,
		Dirty: true, OID: l1ln.OID, Data: l1ln.Data}
}

// evictL2Victim handles an L2 capacity victim: L1 copies are recalled
// (inclusive L2), the newest dirty version goes to both the LLC and the
// OMC, and an older coexisting dirty version goes to the OMC only.
func (f *Frontend) evictL2Victim(vd int, victim cache.Line, reason Reason) {
	lo, hi := f.coresOf(vd)
	for c := lo; c < hi; c++ {
		if removed, ok := f.l1[c].Invalidate(victim.Tag); ok && removed.Dirty {
			if victim.Dirty && victim.OID < removed.OID {
				f.sendVersion(victim, reason)
			}
			victim.Dirty = true
			victim.OID = removed.OID
			victim.Data = removed.Data
		}
	}
	if e := f.dir.Get(victim.Tag); e != nil {
		e.Sharers.Remove(vd)
		if e.Owner == vd {
			e.Owner = -1
		}
		f.dir.DeleteIfEmpty(victim.Tag)
	}
	if victim.Dirty {
		f.sendVersion(victim, reason)
		f.insertLLC(victim, true)
		return
	}
	// Victim-cache semantics: clean L2 victims also land in the
	// non-inclusive LLC (real non-inclusive hierarchies do the same), but a
	// stale shared copy must never shadow newer content: skip the insert
	// when the LLC or DRAM already holds a version at least as new.
	if ln := f.sliceOf(victim.Tag).Peek(victim.Tag); ln != nil && ln.OID >= victim.OID {
		return
	}
	if f.dram.OID(victim.Tag) > victim.OID {
		return
	}
	f.insertLLC(victim, false)
}

// insertLLC places a line leaving a VD into the (non-inclusive) LLC as the
// current-image copy. dirty marks it as newer than the DRAM working copy.
func (f *Frontend) insertLLC(wb cache.Line, dirty bool) {
	slice := f.sliceOf(wb.Tag)
	ln, victim, evicted := slice.Insert(wb.Tag)
	if evicted && victim.Dirty {
		// LLC victims refresh the DRAM working copy; the version itself was
		// already persisted when it left its VD (§IV-A4).
		f.dram.WriteBack(victim.Tag, victim.OID, victim.Data)
		f.stat.Inc("llc_dram_writebacks")
	}
	ln.State = cache.Shared
	ln.OID = wb.OID
	ln.Data = wb.Data
	ln.Dirty = dirty
}

// ---------------------------------------------------------------------------
// Directory / inter-VD protocol

// fetch resolves a shared (GETS) VD miss. The RV of the response is the OID
// of the data served (§IV-A).
func (f *Frontend) fetch(vd int, addr uint64, exclusive bool) (rv, data uint64, lat uint64) {
	e := f.entry(addr)
	if e.Owner != -1 && e.Owner != vd {
		lat += f.cfg.RemoteL2Lat
		rv, data = f.downgradeVD(e.Owner, addr)
		e.Sharers.Add(e.Owner)
		e.Owner = -1
		e.Sharers.Add(vd)
		f.stat.Inc("remote_downgrades")
		return rv, data, lat
	}
	slice := f.sliceOf(addr)
	if ln := slice.Lookup(addr); ln != nil {
		f.stat.Inc("llc_hits")
		e.Sharers.Add(vd)
		return ln.OID, ln.Data, lat
	}
	f.stat.Inc("llc_misses")
	lat += f.dram.Latency()
	e.Sharers.Add(vd)
	return f.dram.OID(addr), f.dram.Data(addr), lat
}

// fetchExclusive resolves a GETX miss: every remote copy is invalidated.
// When the current owner holds a dirty version, it is transferred
// cache-to-cache (dirtyXfer=true) instead of being written back through the
// LLC (§IV-A3 optimisation), saving both traffic and an OMC write.
func (f *Frontend) fetchExclusive(vd int, addr uint64) (rv, data uint64, dirtyXfer bool, lat uint64) {
	e := f.entry(addr)
	haveData := false
	if e.Owner != -1 && e.Owner != vd {
		lat += f.cfg.RemoteL2Lat
		newest, wasDirty := f.invalidateVD(e.Owner, addr)
		e.Owner = -1
		if wasDirty {
			rv, data, dirtyXfer, haveData = newest.OID, newest.Data, true, true
			f.stat.Inc("c2c_transfers")
		} else if newest.Valid {
			rv, data, haveData = newest.OID, newest.Data, true
		}
		f.stat.Inc("remote_invalidations")
	}
	// Iterate a value copy: invalidateVD may touch the directory, and the
	// O(set-bits) walk replaces the old O(VDs) bitmask scan (same ascending
	// order, so invalidation event order is unchanged).
	sharers := e.Sharers
	sharers.ForEach(func(other int) {
		if other == vd {
			return
		}
		lat += f.cfg.RemoteL2Lat
		f.invalidateVD(other, addr)
		e.Sharers.Remove(other)
		f.stat.Inc("remote_invalidations")
	})
	slice := f.sliceOf(addr)
	if ln := slice.Peek(addr); ln != nil {
		if !haveData {
			rv, data, haveData = ln.OID, ln.Data, true
			f.stat.Inc("llc_hits")
		}
		// The LLC copy becomes stale under the new owner; refresh DRAM if it
		// carried the only working copy.
		if ln.Dirty {
			f.dram.WriteBack(ln.Tag, ln.OID, ln.Data)
			f.stat.Inc("llc_dram_writebacks")
		}
		slice.Invalidate(addr)
	}
	if !haveData {
		f.stat.Inc("llc_misses")
		lat += f.dram.Latency()
		rv, data = f.dram.OID(addr), f.dram.Data(addr)
	}
	return rv, data, dirtyXfer, lat
}

// downgradeVD demotes a VD's copies to Shared for a remote GETS. The most
// recent version is written back to the LLC *and* the OMC (it is dirty and
// unpersisted); an older coexisting L2 dirty version goes to the OMC only.
// Returns the version served as the response (RV, data).
func (f *Frontend) downgradeVD(vd int, addr uint64) (rv, data uint64) {
	f.flushQueuedWalk(vd, addr)
	var newest cache.Line
	haveDirty := false
	lo, hi := f.coresOf(vd)
	for c := lo; c < hi; c++ {
		if ln := f.l1[c].Peek(addr); ln != nil {
			if ln.Dirty {
				newest = *ln
				haveDirty = true
				ln.Dirty = false
			}
			ln.State = cache.Shared
		}
	}
	l2ln := f.l2[vd].Peek(addr)
	if l2ln != nil {
		if l2ln.Dirty {
			if haveDirty && l2ln.OID < newest.OID {
				// Both levels dirty: the older L2 version is not part of the
				// current image — OMC only (§IV-A3 observation 1).
				f.sendVersion(*l2ln, ReasonCoherence)
			} else if !haveDirty {
				newest = *l2ln
				haveDirty = true
			}
			l2ln.Dirty = false
		}
		if haveDirty {
			l2ln.OID = newest.OID
			l2ln.Data = newest.Data
		}
		l2ln.State = cache.Shared
	}
	if haveDirty {
		f.sendVersion(newest, ReasonCoherence)
		f.insertLLC(newest, true)
		return newest.OID, newest.Data
	}
	// Clean copies: serve whatever the L2 holds (it is current).
	if l2ln != nil {
		return l2ln.OID, l2ln.Data
	}
	// VD had no copy after all (directory conservatism): fall back to LLC.
	if ln := f.sliceOf(addr).Peek(addr); ln != nil {
		return ln.OID, ln.Data
	}
	return f.dram.OID(addr), f.dram.Data(addr)
}

// invalidateVD removes every copy of addr from a VD for a remote GETX,
// returning the newest version (dirty => cache-to-cache transfer). An older
// coexisting dirty version is persisted to the OMC.
func (f *Frontend) invalidateVD(vd int, addr uint64) (newest cache.Line, wasDirty bool) {
	f.flushQueuedWalk(vd, addr)
	lo, hi := f.coresOf(vd)
	for c := lo; c < hi; c++ {
		if removed, ok := f.l1[c].Invalidate(addr); ok {
			if removed.Dirty {
				newest = removed
				wasDirty = true
			} else if !newest.Valid {
				newest = removed
			}
		}
	}
	if removed, ok := f.l2[vd].Invalidate(addr); ok {
		if removed.Dirty {
			if wasDirty && removed.OID < newest.OID {
				// Older version below the newest: OMC only.
				f.sendVersion(removed, ReasonCoherence)
			} else if !wasDirty {
				newest = removed
				wasDirty = true
			}
		} else if !newest.Valid {
			newest = removed
		}
	}
	if e := f.dir.Get(addr); e != nil {
		e.Sharers.Remove(vd)
		if e.Owner == vd {
			e.Owner = -1
		}
	}
	return newest, wasDirty
}

// fillL2 installs a clean copy of addr into the VD's L2.
func (f *Frontend) fillL2(vd int, addr uint64, state cache.State, oid, data uint64) {
	if ln := f.l2[vd].Peek(addr); ln != nil {
		// Keep a resident dirty version; only the coherence state changes.
		if !ln.Dirty {
			ln.OID = oid
			ln.Data = data
		}
		ln.State = state
		return
	}
	ln, victim, evicted := f.l2[vd].Insert(addr)
	if evicted {
		f.evictL2Victim(vd, victim, ReasonCapacity)
	}
	ln.State = state
	ln.OID = oid
	ln.Data = data
	ln.Dirty = false
}

// fillL1 installs addr into tid's L1; dirty victims flow to the L2 through
// the version-checked PUTX path. dirtyXfer marks a cache-to-cache dirty
// transfer, which stays dirty in the L1 (it is still unpersisted).
func (f *Frontend) fillL1(tid int, addr uint64, state cache.State, oid, data uint64, dirtyXfer bool) {
	vd := f.cfg.VDOf(tid)
	ln, victim, evicted := f.l1[tid].Insert(addr)
	if evicted && victim.Dirty {
		f.putxToL2(vd, victim, ReasonCapacity)
		f.stat.Inc("l1_dirty_evictions")
	}
	ln.State = state
	ln.OID = oid
	ln.Data = data
	ln.Dirty = dirtyXfer
	if dirtyXfer {
		ln.State = cache.Modified
	}
}

// ---------------------------------------------------------------------------
// Drain and invariants

// Drain flushes every dirty version out of the hierarchy (end of run) and
// reports final min-vers so the backend can merge everything.
func (f *Frontend) Drain(now uint64) {
	f.now = now
	f.stall = 0
	for vd := 0; vd < f.cfg.VDs(); vd++ {
		for _, ln := range f.walkQ[vd] {
			f.sendVersion(ln, ReasonWalk)
			f.dram.WriteBack(ln.Tag, ln.OID, ln.Data)
		}
		f.walkQ[vd] = nil
		f.walkReport[vd] = 0
	}
	for vd := 0; vd < f.cfg.VDs(); vd++ {
		lo, hi := f.coresOf(vd)
		for c := lo; c < hi; c++ {
			for _, ln := range f.l1[c].Flush() {
				if ln.Dirty {
					f.putxToL2(vd, ln, ReasonDrain)
				}
			}
		}
		for _, ln := range f.l2[vd].Flush() {
			if ln.Dirty {
				f.sendVersion(ln, ReasonDrain)
				f.insertLLC(ln, true)
			}
		}
	}
	for _, slice := range f.llc {
		for _, ln := range slice.Flush() {
			if ln.Dirty {
				f.dram.WriteBack(ln.Tag, ln.OID, ln.Data)
			}
		}
	}
	f.dir.Reset()
	// No min-ver reports here: the backend's Seal merges every remaining
	// epoch, and reporting would blur the walker's role in experiments.
}

// CheckInvariants validates the version-protocol invariants; tests call it
// after randomised runs. Verified properties: L1⊆L2 inclusion, directory
// agreement, single-writer, and the version-ordering invariant that an L1
// version is never older than the L2 version of the same address (§IV-A2).
func (f *Frontend) CheckInvariants() error {
	for tid, l1 := range f.l1 {
		vd := f.cfg.VDOf(tid)
		var err error
		l1.ForEach(func(ln *cache.Line) {
			if err != nil {
				return
			}
			l2ln := f.l2[vd].Peek(ln.Tag)
			if l2ln == nil {
				err = fmt.Errorf("L1 %d holds %#x but L2 %d does not (inclusion)", tid, ln.Tag, vd)
				return
			}
			if ln.OID < l2ln.OID {
				err = fmt.Errorf("L1 %d version %d of %#x older than L2 version %d",
					tid, ln.OID, ln.Tag, l2ln.OID)
			}
			if ln.State.Writable() {
				lo, hi := f.coresOf(vd)
				for c := lo; c < hi; c++ {
					if c != tid && f.l1[c].Peek(ln.Tag) != nil {
						err = fmt.Errorf("L1 %d holds %#x writable while sibling %d caches it",
							tid, ln.Tag, c)
					}
				}
			}
		})
		if err != nil {
			return err
		}
	}
	for vd, l2 := range f.l2 {
		var err error
		l2.ForEach(func(ln *cache.Line) {
			if err != nil {
				return
			}
			e := f.dir.Get(ln.Tag)
			if e == nil {
				err = fmt.Errorf("L2 %d holds %#x with no directory entry", vd, ln.Tag)
				return
			}
			if e.Owner != vd && !e.Sharers.Has(vd) {
				err = fmt.Errorf("L2 %d holds %#x but directory disagrees", vd, ln.Tag)
			}
			if ln.State.Writable() && e.Owner != vd {
				err = fmt.Errorf("L2 %d holds %#x writable but owner=%d", vd, ln.Tag, e.Owner)
			}
			if ln.OID > f.cur[vd] {
				err = fmt.Errorf("L2 %d holds %#x tagged epoch %d beyond cur %d",
					vd, ln.Tag, ln.OID, f.cur[vd])
			}
		})
		if err != nil {
			return err
		}
	}
	// Walker fast-path soundness: with no dirty inflow since the last walk
	// and an empty walk queue, no stale dirty version may exist (the min-ver
	// report skips its rescan on exactly this claim). Only meaningful when
	// the walker actually runs at every advance.
	for vd := range f.l2 {
		if !f.walker || f.dirtyInflow[vd] || len(f.walkQ[vd]) > 0 {
			continue
		}
		var err error
		stale := func(where string) func(*cache.Line) {
			return func(ln *cache.Line) {
				if err == nil && ln.Dirty && ln.OID < f.walkedTo(vd) {
					err = fmt.Errorf("%s holds stale dirty %#x@%d with no inflow flag",
						where, ln.Tag, ln.OID)
				}
			}
		}
		lo, hi := f.coresOf(vd)
		for c := lo; c < hi; c++ {
			f.l1[c].ForEach(stale(fmt.Sprintf("L1 %d", c)))
		}
		f.l2[vd].ForEach(stale(fmt.Sprintf("L2 %d", vd)))
		if err != nil {
			return err
		}
	}
	return nil
}

// walkedTo returns the epoch below which vd's caches are guaranteed clean
// when no dirty inflow is pending: the epoch of its last tag walk (cur at
// walk time). A pending report records it; otherwise the walk ran at the
// current epoch.
func (f *Frontend) walkedTo(vd int) uint64 {
	if f.walkReport[vd] != 0 {
		return f.walkReport[vd]
	}
	return f.cur[vd]
}
