package cst

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/omc"
	"repro/internal/sim"
)

// mockBackend records versions delivered by the frontend.
type mockBackend struct {
	versions []omc.Version
	minVers  map[int]uint64
	contexts int
}

func newMock() *mockBackend { return &mockBackend{minVers: map[int]uint64{}} }

func (m *mockBackend) ReceiveVersion(v omc.Version, now uint64) uint64 {
	m.versions = append(m.versions, v)
	return 0
}
func (m *mockBackend) ReportMinVer(vd int, ver uint64, now uint64) { m.minVers[vd] = ver }
func (m *mockBackend) LowerMinVer(vd int, ver uint64, now uint64) {
	if cur, ok := m.minVers[vd]; !ok || ver < cur {
		m.minVers[vd] = ver
	}
}
func (m *mockBackend) DumpContext(vd int, epoch, now uint64) uint64 {
	m.contexts++
	return 0
}

// latest returns the data of the newest version received for addr (by
// epoch, then arrival order).
func (m *mockBackend) latest(addr uint64) (omc.Version, bool) {
	var best omc.Version
	found := false
	for _, v := range m.versions {
		if v.Addr == addr && (!found || v.Epoch >= best.Epoch) {
			best = v
			found = true
		}
	}
	return best, found
}

func cstCfg() *sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Cores = 4
	cfg.CoresPerVD = 2
	cfg.LLCSlices = 2
	cfg.L1Size = 4 * 2 * 64
	cfg.L1Ways = 2
	cfg.L2Size = 8 * 2 * 64
	cfg.L2Ways = 2
	cfg.LLCSize = 2 * 4 * 4 * 64
	cfg.LLCWays = 4
	cfg.EpochSize = 1000 // large: tests advance epochs explicitly
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &cfg
}

func newFE(cfg *sim.Config) (*Frontend, *mockBackend, *mem.DRAM) {
	mb := newMock()
	dram := mem.NewDRAM(cfg)
	return New(cfg, dram, mb), mb, dram
}

func TestStoreTagsCurrentEpoch(t *testing.T) {
	cfg := cstCfg()
	f, _, _ := newFE(cfg)
	f.Access(0, 0x40, true, 7, 0)
	ln := f.L1(0).Peek(0x40)
	if ln == nil || !ln.Dirty || ln.OID != 1 || ln.Data != 7 {
		t.Fatalf("post-store line = %+v", ln)
	}
	if f.CurEpoch(0) != 1 {
		t.Fatalf("cur epoch = %d", f.CurEpoch(0))
	}
}

func TestEpochBoundaryByStoreCount(t *testing.T) {
	cfg := cstCfg()
	cfg.EpochSize = 3
	f, mb, _ := newFE(cfg)
	for i := 0; i < 3; i++ {
		f.Access(0, uint64(0x40+i*64), true, uint64(i), 0)
	}
	if f.CurEpoch(0) != 2 {
		t.Fatalf("epoch after 3 stores = %d, want 2", f.CurEpoch(0))
	}
	if mb.contexts != 1 {
		t.Fatalf("context dumps = %d", mb.contexts)
	}
	// The walker ran and reported min-ver = new cur-epoch.
	if mb.minVers[0] != 2 {
		t.Fatalf("min-ver = %d", mb.minVers[0])
	}
	// Walked versions arrived at the OMC tagged with the closed epoch.
	if len(mb.versions) != 3 {
		t.Fatalf("versions persisted by walk = %d", len(mb.versions))
	}
	for _, v := range mb.versions {
		if v.Epoch != 1 {
			t.Fatalf("walked version epoch = %d", v.Epoch)
		}
	}
	// VD1 is unaffected.
	if f.CurEpoch(1) != 1 {
		t.Fatal("foreign VD advanced")
	}
}

func TestStoreEviction(t *testing.T) {
	cfg := cstCfg()
	cfg.EpochSize = 1 // every store closes an epoch
	cfg.TagWalker = false
	f, mb, _ := newFE(cfg)
	f.Access(0, 0x40, true, 1, 0) // epoch 1 -> advances to 2
	f.Access(0, 0x40, true, 2, 0) // store to immutable version of epoch 1
	if f.Stats().Get("store_evictions") != 1 {
		t.Fatalf("store evictions = %d", f.Stats().Get("store_evictions"))
	}
	// The old version now sits in the L2, dirty, tagged epoch 1; the L1
	// holds the new version of epoch 2.
	l1 := f.L1(0).Peek(0x40)
	l2 := f.L2(0).Peek(0x40)
	if l1.OID != 2 || l1.Data != 2 || !l1.Dirty {
		t.Fatalf("L1 = %+v", l1)
	}
	if l2.OID != 1 || l2.Data != 1 || !l2.Dirty {
		t.Fatalf("L2 = %+v", l2)
	}
	// A third epoch displaces the L2's version to the OMC.
	f.Access(0, 0x40, true, 3, 0)
	if len(mb.versions) != 1 || mb.versions[0].Epoch != 1 || mb.versions[0].Data != 1 {
		t.Fatalf("OMC received %v", mb.versions)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCoherenceDrivenEpochAdvance(t *testing.T) {
	cfg := cstCfg()
	cfg.EpochSize = 2
	cfg.TagWalker = false
	f, _, _ := newFE(cfg)
	// VD0 runs ahead: 4 stores => epoch 3.
	for i := 0; i < 4; i++ {
		f.Access(0, uint64(i*64), true, uint64(i), 0)
	}
	if f.CurEpoch(0) != 3 {
		t.Fatalf("VD0 epoch = %d", f.CurEpoch(0))
	}
	// VD0 writes a line in epoch 3; VD1 (epoch 1) reads it and must jump.
	f.Access(0, 0x2000, true, 99, 0)
	res := f.Access(2, 0x2000, false, 0, 0)
	if f.CurEpoch(1) != 3 {
		t.Fatalf("VD1 epoch after observing future data = %d, want 3", f.CurEpoch(1))
	}
	if res.VDStall == 0 {
		t.Fatal("epoch advance should stall the VD")
	}
	if f.Stats().Get("coherence_epoch_advances") != 1 {
		t.Fatal("advance not classified as coherence-driven")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDowngradePersistsNewestVersion(t *testing.T) {
	cfg := cstCfg()
	cfg.TagWalker = false
	f, mb, _ := newFE(cfg)
	f.Access(0, 0x80, true, 42, 0) // VD0 dirty version, epoch 1
	f.Access(2, 0x80, false, 0, 0) // VD1 GETS: downgrade
	if v, ok := mb.latest(0x80); !ok || v.Data != 42 || v.Epoch != 1 {
		t.Fatalf("downgrade did not persist the version: %v", mb.versions)
	}
	if f.EvictReason(ReasonCoherence) != 1 {
		t.Fatal("downgrade write-back not counted as coherence")
	}
	// Both VDs keep shared clean copies; LLC holds the current image.
	if ln := f.L2(0).Peek(0x80); ln == nil || ln.Dirty || ln.State.Writable() {
		t.Fatalf("owner L2 after downgrade = %+v", ln)
	}
	slice := f.LLCSlice(int((0x80 / 64) % 2))
	if ln := slice.Peek(0x80); ln == nil || ln.Data != 42 {
		t.Fatal("LLC missing the downgraded version")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidationUsesCacheToCacheTransfer(t *testing.T) {
	cfg := cstCfg()
	cfg.TagWalker = false
	f, mb, _ := newFE(cfg)
	f.Access(0, 0x80, true, 42, 0) // VD0 dirty version
	f.Access(2, 0x80, true, 43, 0) // VD1 GETX: c2c transfer, then store
	if f.Stats().Get("c2c_transfers") != 1 {
		t.Fatal("no cache-to-cache transfer")
	}
	// Same epoch on both sides (epoch 1): the transferred version is
	// overwritten in place; nothing needs to reach the OMC yet.
	if len(mb.versions) != 0 {
		t.Fatalf("OMC traffic despite c2c optimisation: %v", mb.versions)
	}
	ln := f.L1(2).Peek(0x80)
	if ln == nil || !ln.Dirty || ln.Data != 43 {
		t.Fatalf("requestor line = %+v", ln)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestC2CTransferOfOldEpochVersionStoreEvicts(t *testing.T) {
	cfg := cstCfg()
	cfg.EpochSize = 1
	cfg.TagWalker = false
	f, mb, _ := newFE(cfg)
	f.Access(0, 0x80, true, 42, 0) // VD0: version of epoch 1; VD0 -> epoch 2
	f.Access(2, 0x80, true, 43, 0) // VD1 (still epoch 1) steals the dirty version
	// Same epoch on both sides: the transferred version is legitimately
	// overwritten in place (snapshot 1 keeps the newest epoch-1 value), and
	// VD1's boundary then closes its epoch 1.
	if f.Stats().Get("store_evictions") != 0 {
		t.Fatalf("store evictions = %d, want 0", f.Stats().Get("store_evictions"))
	}
	// VD1 is now at epoch 2; its next store to the immutable epoch-1
	// version must store-evict it, and the displaced version must carry the
	// newest epoch-1 data (43, not 42).
	f.Access(2, 0x80, true, 44, 0)
	if f.Stats().Get("store_evictions") != 1 {
		t.Fatalf("store evictions = %d, want 1", f.Stats().Get("store_evictions"))
	}
	f.Drain(0)
	if v, ok := mb.latest(0x80); !ok || v.Data != 44 {
		t.Fatalf("newest persisted version = %+v, %v", v, ok)
	}
	for _, v := range mb.versions {
		if v.Epoch == 1 && v.Data == 42 {
			t.Fatal("superseded same-epoch version 42 reached the OMC")
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadsIgnoreVersionTags(t *testing.T) {
	cfg := cstCfg()
	cfg.EpochSize = 1
	cfg.TagWalker = false
	f, _, _ := newFE(cfg)
	f.Access(0, 0x40, true, 5, 0) // epoch 1, then advance
	// Load hits the (old-version) line without any protocol action.
	lat := f.Access(0, 0x40, false, 0, 0).Lat
	if lat != cfg.L1Latency {
		t.Fatalf("load on old version latency = %d, want L1 hit", lat)
	}
}

func TestWalkerDowngradesAndReports(t *testing.T) {
	cfg := cstCfg()
	cfg.EpochSize = 2
	f, mb, dram := newFE(cfg)
	f.Access(0, 0x40, true, 1, 0)
	f.Access(0, 0x80, true, 2, 0) // boundary: walk persists both
	if got := f.EvictReason(ReasonWalk); got != 2 {
		t.Fatalf("walk evictions = %d", got)
	}
	if mb.minVers[0] != 2 {
		t.Fatalf("min-ver = %d", mb.minVers[0])
	}
	// Walked lines are clean now; DRAM working copy refreshed.
	if dram.Data(0x40) != 1 || dram.Data(0x80) != 2 {
		t.Fatal("walker did not refresh DRAM working copies")
	}
	if f.L2(0).CountDirty() != 0 {
		t.Fatal("dirty versions survived the walk")
	}
	// L1 copies downgraded M->E, still resident.
	if ln := f.L1(0).Peek(0x40); ln == nil || ln.Dirty || ln.State != cache.Exclusive {
		t.Fatalf("L1 after walk = %+v", ln)
	}
}

func TestWalkerDisabled(t *testing.T) {
	cfg := cstCfg()
	cfg.EpochSize = 2
	cfg.TagWalker = false
	f, mb, _ := newFE(cfg)
	f.Access(0, 0x40, true, 1, 0)
	f.Access(0, 0x80, true, 2, 0)
	if f.EvictReason(ReasonWalk) != 0 || len(mb.minVers) != 0 {
		t.Fatal("walker ran despite being disabled")
	}
}

func TestL2CapacityEvictionSendsVersionToLLCAndOMC(t *testing.T) {
	cfg := cstCfg()
	cfg.TagWalker = false
	f, mb, _ := newFE(cfg)
	// L2 has 8 sets x 2 ways = 16 lines; write 40 distinct lines.
	for i := 0; i < 40; i++ {
		f.Access(0, uint64(i*64), true, uint64(i), 0)
	}
	if f.EvictReason(ReasonCapacity) == 0 {
		t.Fatal("no capacity version evictions")
	}
	if len(mb.versions) == 0 {
		t.Fatal("no versions reached the OMC")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDrainFlushesEverything(t *testing.T) {
	cfg := cstCfg()
	cfg.TagWalker = false
	f, mb, dram := newFE(cfg)
	f.Access(0, 0x40, true, 11, 0)
	f.Access(2, 0x80, true, 22, 0)
	f.Drain(0)
	if v, ok := mb.latest(0x40); !ok || v.Data != 11 {
		t.Fatal("drain lost 0x40")
	}
	if v, ok := mb.latest(0x80); !ok || v.Data != 22 {
		t.Fatal("drain lost 0x80")
	}
	// Drain leaves min-ver reporting to the backend's Seal.
	if len(mb.minVers) != 0 {
		t.Fatalf("drain reported min-vers: %v", mb.minVers)
	}
	if dram.Data(0x40) != 11 || dram.Data(0x80) != 22 {
		t.Fatal("drain did not refresh DRAM")
	}
}

// TestFreshness replays the coherence oracle on the versioned hierarchy:
// loads must always observe the newest store regardless of the version
// machinery, epoch advances and store-evictions happening underneath.
func TestFreshness(t *testing.T) {
	cfg := cstCfg()
	cfg.EpochSize = 50
	latest := map[uint64]uint64{}
	f, _, _ := newFE(cfg)
	r := sim.NewRNG(7)
	var token uint64
	for i := 0; i < 30000; i++ {
		tid := r.Intn(cfg.Cores)
		addr := uint64(r.Intn(256) * 64)
		if r.Intn(3) == 0 {
			token++
			f.Access(tid, addr, true, token, 0)
			latest[addr] = token
		} else {
			f.Access(tid, addr, false, 0, 0)
			ln := f.L1(tid).Peek(addr)
			if ln == nil {
				t.Fatalf("iteration %d: loaded %#x absent from L1", i, addr)
			}
			if ln.Data != latest[addr] {
				t.Fatalf("iteration %d: tid %d read %d of %#x, want %d (stale)",
					i, tid, ln.Data, addr, latest[addr])
			}
		}
		if i%2000 == 0 {
			if err := f.CheckInvariants(); err != nil {
				t.Fatalf("iteration %d: %v", i, err)
			}
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestImmutabilityInvariant checks the paper's core CST invariant: once an
// epoch closes, every version of that epoch delivered to the OMC carries
// the data of the *last* store the epoch made to that address — dirty old
// versions are never mutated in place.
func TestImmutabilityInvariant(t *testing.T) {
	cfg := cstCfg()
	cfg.EpochSize = 25
	f, mb, _ := newFE(cfg)
	r := sim.NewRNG(13)
	// Oracle: last value written per (VD-epoch, addr).
	type key struct{ epoch, addr uint64 }
	oracle := map[key]uint64{}
	var token uint64
	for i := 0; i < 20000; i++ {
		tid := r.Intn(cfg.Cores)
		vd := cfg.VDOf(tid)
		addr := uint64(r.Intn(128) * 64)
		if r.Intn(2) == 0 {
			token++
			f.Access(tid, addr, true, token, 0)
			// The store is tagged with the epoch in the L1 line's OID (the
			// boundary advance inside Access may already have moved cur).
			taggedEpoch := f.L1(tid).Peek(addr).OID
			oracle[key{taggedEpoch, addr}] = token
			_ = vd
		} else {
			f.Access(tid, addr, false, 0, 0)
		}
	}
	f.Drain(0)
	// Receipt order is causal, so the LAST version received for each
	// (epoch, addr) must carry the final value that epoch wrote there;
	// earlier receipts are intermediate same-epoch versions, which are
	// legal (the per-epoch table keeps only the newest).
	last := map[key]uint64{}
	for _, v := range mb.versions {
		if _, produced := oracle[key{v.Epoch, v.Addr}]; !produced {
			t.Fatalf("OMC received version (%#x, epoch %d) never produced", v.Addr, v.Epoch)
		}
		last[key{v.Epoch, v.Addr}] = v.Data
	}
	for k, got := range last {
		if want := oracle[k]; got != want {
			t.Fatalf("final version (%#x, epoch %d) data %d, want %d (immutability violated)",
				k.addr, k.epoch, got, want)
		}
	}
}

// TestEndToEndSnapshotConsistency wires the real MNM backend behind the
// frontend and verifies that the recovered image equals the final memory
// state after a random multithreaded run.
func TestEndToEndSnapshotConsistency(t *testing.T) {
	cfg := cstCfg()
	cfg.EpochSize = 40
	nvm := mem.NewNVM(cfg)
	g := omc.NewGroup(cfg, nvm, 2)
	dram := mem.NewDRAM(cfg)
	f := New(cfg, dram, g)
	r := sim.NewRNG(21)
	final := map[uint64]uint64{}
	var token uint64
	for i := 0; i < 30000; i++ {
		tid := r.Intn(cfg.Cores)
		addr := uint64(r.Intn(300) * 64)
		if r.Intn(2) == 0 {
			token++
			f.Access(tid, addr, true, token, uint64(i))
			final[addr] = token
		} else {
			f.Access(tid, addr, false, 0, uint64(i))
		}
	}
	f.Drain(30000)
	g.Seal(30000)
	img, lat := g.RecoverImage()
	if lat == 0 {
		t.Fatal("recovery latency zero")
	}
	if len(img) != len(final) {
		t.Fatalf("image has %d lines, want %d", len(img), len(final))
	}
	for addr, want := range final {
		if img[addr] != want {
			t.Fatalf("recovered %#x = %d, want %d", addr, img[addr], want)
		}
	}
	// Mid-run recoverable epoch advanced beyond zero thanks to the walker.
	if g.Stats().Get("recepoch_advances") == 0 {
		t.Fatal("rec-epoch never advanced during the run")
	}
}

func TestWrapAroundGroupTransitions(t *testing.T) {
	cfg := cstCfg()
	cfg.EpochSize = 1 // advance every store
	cfg.WrapEpochs = true
	cfg.WrapWidth = 4 // 16 epochs, groups of 8
	f, _, _ := newFE(cfg)
	for i := 0; i < 40; i++ {
		f.Access(0, uint64((i%4)*64), true, uint64(i), 0)
	}
	// 40 epoch advances across a 16-epoch space: several group crossings.
	if f.WrapFlushes() < 4 {
		t.Fatalf("wrap flushes = %d", f.WrapFlushes())
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReasonStrings(t *testing.T) {
	want := map[Reason]string{
		ReasonCapacity: "capacity", ReasonCoherence: "coherence",
		ReasonWalk: "walk", ReasonStoreEvict: "storeevict", ReasonDrain: "drain",
	}
	for r, s := range want {
		if r.String() != s {
			t.Fatalf("%d.String() = %q", r, r.String())
		}
	}
	if Reason(99).String() != "reason99" {
		t.Fatal("unknown reason")
	}
}
