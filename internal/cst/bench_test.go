package cst

import "testing"

func BenchmarkL1StoreHit(b *testing.B) {
	cfg := cstCfg()
	f, _, _ := newFE(cfg)
	f.Access(0, 0x40, true, 1, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Access(0, 0x40, true, uint64(i), uint64(i))
	}
}

func BenchmarkStoreEvictionPath(b *testing.B) {
	cfg := cstCfg()
	cfg.EpochSize = 1 // every store closes an epoch -> store-evictions
	cfg.TagWalker = false
	f, _, _ := newFE(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Access(0, 0x40, true, uint64(i), uint64(i))
	}
}

func BenchmarkCrossVDSharing(b *testing.B) {
	cfg := cstCfg()
	f, _, _ := newFE(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tid := (i % 2) * 2 // alternate VDs writing one line
		f.Access(tid, 0x80, true, uint64(i), uint64(i))
	}
}
