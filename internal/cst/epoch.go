// Package cst implements NVOverlay's Coherent Snapshot Tracking frontend
// (paper §IV): the version-tagged L1/L2 hierarchy with its version access
// protocol (store-eviction, multi-version residency), coherence-driven
// Lamport-clock epoch synchronisation across versioned domains, the per-VD
// L2 tag walker that feeds the recoverable-epoch protocol, and the 16-bit
// epoch wrap-around scheme.
package cst

import "fmt"

// WrapSpace implements the paper's second wrap-around solution (§IV-D): the
// fixed-width epoch space is partitioned into two equally sized groups, L
// (lower half) and U (upper half), and a persistent epoch-sense bit records
// which group is logically ahead. Inter-VD skew must stay below half the
// space, which the frontend enforces by bounding skew to EpochSize-driven
// advances.
type WrapSpace struct {
	width uint
	// senseUAhead is the epoch-sense bit: when true, wire values in U are
	// logically ahead of values in L; when false, L is ahead of U.
	senseUAhead bool
	flips       int
}

// NewWrapSpace creates a space of 2^width epochs. width must be in [4,16]
// (the paper uses 16).
func NewWrapSpace(width uint) *WrapSpace {
	if width < 4 || width > 16 {
		panic(fmt.Sprintf("cst: wrap width %d out of range [4,16]", width))
	}
	// At reset, epochs start in L and L is the "ahead" (current) group.
	return &WrapSpace{width: width, senseUAhead: false}
}

// WireEpoch is a fixed-width epoch value as it appears on the wire and in
// cache tags: it wraps around, so raw <, >, +, - on it are meaningless —
// wire 0 may be logically *ahead* of wire 65535. All ordering must go
// through the wrap-safe WrapSpace helpers below; nvlint's epochwrap check
// enforces this mechanically.
//
// nvlint:wrapsensitive
type WireEpoch uint64

// Size returns the number of representable wire epochs.
func (w *WrapSpace) Size() uint64 { return 1 << w.width }

// Half returns the group size.
func (w *WrapSpace) Half() uint64 { return 1 << (w.width - 1) }

// Wire maps a monotonically increasing logical epoch onto the wire space.
func (w *WrapSpace) Wire(logical uint64) WireEpoch {
	return WireEpoch(logical & (w.Size() - 1))
}

// GroupU reports whether a wire value belongs to the upper group. The raw
// comparison is legal here: group membership is a property of the wire
// value itself, not an ordering between two wrapped values.
//
// nvlint:wrapsafe
func (w *WrapSpace) GroupU(wire WireEpoch) bool { return wire >= WireEpoch(w.Half()) }

// Less compares two wire epochs under the current sense bit. Within a group
// ordering is numeric; across groups the sense bit decides. This is the
// designated ordering helper for WireEpoch values: the raw < below is only
// correct because the sense-bit protocol guarantees inter-VD skew stays
// under half the space (§IV-D).
//
// nvlint:wrapsafe
func (w *WrapSpace) Less(a, b WireEpoch) bool {
	ga, gb := w.GroupU(a), w.GroupU(b)
	if ga == gb {
		return a < b
	}
	if w.senseUAhead {
		// U is ahead: anything in L is older.
		return !ga
	}
	return ga
}

// Sense returns the persistent epoch-sense bit.
func (w *WrapSpace) Sense() bool { return w.senseUAhead }

// Flips returns how many times the sense bit has toggled.
func (w *WrapSpace) Flips() int { return w.flips }

// OnGroupTransition is invoked when a VD first advances its local epoch
// from the currently-ahead group into the other group. The system must
// guarantee that no cache lines remain tagged with epochs of that "new"
// group (the frontend flushes residual tags) before the sense bit flips,
// recycling the vacated group's numbers ahead of the current group.
func (w *WrapSpace) OnGroupTransition(newWire WireEpoch) {
	enteringU := w.GroupU(newWire)
	if enteringU != w.senseUAhead {
		w.senseUAhead = enteringU
		w.flips++
	}
}

// CrossesGroup reports whether advancing from wire epoch a to b crosses the
// group boundary (requiring the flush-and-flip protocol above).
func (w *WrapSpace) CrossesGroup(a, b WireEpoch) bool {
	return w.GroupU(a) != w.GroupU(b)
}
