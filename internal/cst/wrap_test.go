package cst

import "testing"

// TestWrapSpace16BitBoundary pins down the paper's 16-bit OID space at the
// exact wrap seam: wire values 65534 -> 65535 -> 0, group membership, the
// sense flip, and cross-group ordering after the flip.
func TestWrapSpace16BitBoundary(t *testing.T) {
	w := NewWrapSpace(16)
	if w.Size() != 65536 || w.Half() != 32768 {
		t.Fatalf("size=%d half=%d", w.Size(), w.Half())
	}
	wires := []struct {
		logical uint64
		wire    WireEpoch
		groupU  bool
	}{
		{32767, 32767, false},
		{32768, 32768, true},
		{65534, 65534, true},
		{65535, 65535, true},
		{65536, 0, false}, // the 16-bit OID wraps here
		{65537, 1, false},
		{98303, 32767, false},
		{98304, 32768, true},
	}
	for _, c := range wires {
		if got := w.Wire(c.logical); got != c.wire {
			t.Errorf("Wire(%d) = %d, want %d", c.logical, got, c.wire)
		}
		if got := w.GroupU(c.wire); got != c.groupU {
			t.Errorf("GroupU(%d) = %v, want %v", c.wire, got, c.groupU)
		}
	}
	if w.CrossesGroup(65534, 65535) {
		t.Error("65534 -> 65535 must stay inside group U")
	}
	if !w.CrossesGroup(65535, 0) {
		t.Error("65535 -> 0 must cross the group boundary")
	}

	// Drive the sense bit through a full cycle: L -> U -> L.
	if w.Sense() {
		t.Fatal("reset sense must be L-ahead")
	}
	w.OnGroupTransition(32768) // enter U
	if !w.Sense() || w.Flips() != 1 {
		t.Fatalf("after entering U: sense=%v flips=%d", w.Sense(), w.Flips())
	}
	w.OnGroupTransition(0) // wrap back into L
	if w.Sense() || w.Flips() != 2 {
		t.Fatalf("after wrapping to L: sense=%v flips=%d", w.Sense(), w.Flips())
	}
	// With L ahead again, the stale U values order before the fresh L ones:
	// wire 65535 is logically older than wire 0.
	if !w.Less(65535, 0) {
		t.Error("Less(65535, 0) = false after wrap; U must be behind L")
	}
	if w.Less(0, 65535) {
		t.Error("Less(0, 65535) = true after wrap")
	}
}

// TestOIDBoundaryWrapFrontend runs the frontend's version access protocol
// across warped epoch starting points: the 65535 -> 0 wire seam, the
// half-space L -> U crossing, and a same-group control. Each case checks the
// wire sequence, the group-transition flush count, that every version
// (including the ones the walker drains across the wrap) still reaches the
// OMC with its correct monotonic epoch, and that min-ver reporting keeps
// tracking the current epoch through the flip.
func TestOIDBoundaryWrapFrontend(t *testing.T) {
	cases := []struct {
		name        string
		start       uint64      // cur-epoch warped in before the first store
		wantWires   []WireEpoch // wire of cur after each of the stores
		wantFlushes int
	}{
		{"wrap 65534-65535-0", 65534, []WireEpoch{65535, 0, 1, 2}, 1},
		{"cross half 32767-32768", 32766, []WireEpoch{32767, 32768, 32769, 32770}, 1},
		{"same group control", 100, []WireEpoch{101, 102, 103, 104}, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := cstCfg()
			cfg.EpochSize = 1 // every store closes an epoch
			cfg.WrapEpochs = true
			cfg.WrapWidth = 16
			f, mb, _ := newFE(cfg)

			// Warp VD0 to the starting epoch and sync the sense bit the way
			// a long-running system would have arrived there.
			f.cur[0] = c.start
			f.wrap.OnGroupTransition(f.wrap.Wire(c.start))
			baseFlips := f.wrap.Flips()

			stores := len(c.wantWires)
			for i := 0; i < stores; i++ {
				addr := uint64(0x40 + i*64)
				f.Access(0, addr, true, uint64(i)+1, uint64(i))
				if got := f.wrap.Wire(f.CurEpoch(0)); got != c.wantWires[i] {
					t.Fatalf("wire after store %d = %d, want %d", i, got, c.wantWires[i])
				}
			}
			if got := f.WrapFlushes(); got != c.wantFlushes {
				t.Errorf("wrap flushes = %d, want %d", got, c.wantFlushes)
			}
			if got := f.wrap.Flips() - baseFlips; got != c.wantFlushes {
				t.Errorf("sense flips = %d, want %d", got, c.wantFlushes)
			}
			// The logical epoch is monotonic even though the wire wrapped.
			if got, want := f.CurEpoch(0), c.start+uint64(stores); got != want {
				t.Errorf("cur epoch = %d, want %d", got, want)
			}
			// Every store's version was persisted under its monotonic epoch,
			// whether the walker or the group-transition flush shipped it.
			for i := 0; i < stores; i++ {
				addr := uint64(0x40 + i*64)
				v, ok := mb.latest(addr)
				if !ok {
					t.Fatalf("addr %#x never reached the OMC", addr)
				}
				if v.Epoch != c.start+uint64(i) || v.Data != uint64(i)+1 {
					t.Errorf("addr %#x persisted as epoch %d data %d, want epoch %d data %d",
						addr, v.Epoch, v.Data, c.start+uint64(i), uint64(i)+1)
				}
			}
			// The walker kept running across the wrap and its final report
			// tracks the current epoch (nothing unpersisted remains).
			if got := mb.minVers[0]; got != f.CurEpoch(0) {
				t.Errorf("min-ver = %d, want cur epoch %d", got, f.CurEpoch(0))
			}
			if f.EvictReason(ReasonWalk) == 0 {
				t.Error("tag walker shipped nothing across the boundary")
			}
			if c.wantFlushes > 0 && f.EvictReason(ReasonDrain) == 0 {
				t.Error("group transition performed no flush write-back")
			}
			if err := f.CheckInvariants(); err != nil {
				t.Errorf("invariants violated after wrap: %v", err)
			}
		})
	}
}

// TestNaturalWrap16Bit advances a VD from epoch 1 through the full 16-bit
// space by store-count boundaries alone (no warping): the run crosses the
// half-space boundary at 32768 and the wrap seam at 65536, so exactly two
// group-transition flushes and sense flips must occur, and the final drained
// image must still hold every address's last value.
func TestNaturalWrap16Bit(t *testing.T) {
	if testing.Short() {
		t.Skip("65k epoch advances")
	}
	cfg := cstCfg()
	cfg.EpochSize = 1
	cfg.WrapEpochs = true
	cfg.WrapWidth = 16
	f, mb, _ := newFE(cfg)

	const stores = 65600 // past logical 65536: both group boundaries crossed
	const addrs = 8
	last := make(map[uint64]uint64)
	for i := 0; i < stores; i++ {
		addr := uint64(0x40 + (i%addrs)*64)
		data := uint64(i) + 1
		f.Access(0, addr, true, data, uint64(i))
		last[addr] = data
	}
	if got, want := f.CurEpoch(0), uint64(1+stores); got != want {
		t.Fatalf("cur epoch = %d, want %d", got, want)
	}
	if got := f.WrapFlushes(); got != 2 {
		t.Fatalf("wrap flushes = %d, want 2 (at 32768 and at 65536)", got)
	}
	if got := f.wrap.Flips(); got != 2 {
		t.Fatalf("sense flips = %d, want 2", got)
	}
	if f.wrap.Sense() {
		t.Fatal("sense must be back to L-ahead after a full cycle")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatalf("invariants violated: %v", err)
	}
	f.Drain(uint64(stores))
	for addr, want := range last {
		v, ok := mb.latest(addr)
		if !ok || v.Data != want {
			t.Errorf("addr %#x: latest persisted version %+v (ok=%v), want data %d",
				addr, v, ok, want)
		}
	}
}
