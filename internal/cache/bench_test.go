package cache

import "testing"

func BenchmarkLookupHit(b *testing.B) {
	c := New("b", 32<<10, 8, 64)
	for i := 0; i < 64; i++ {
		ln, _, _ := c.Insert(uint64(i * 64))
		ln.State = Shared
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(uint64((i % 64) * 64))
	}
}

func BenchmarkLookupMiss(b *testing.B) {
	c := New("b", 32<<10, 8, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(uint64(i) * 64)
	}
}

func BenchmarkInsertEvict(b *testing.B) {
	c := New("b", 32<<10, 8, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ln, _, _ := c.Insert(uint64(i) * 64)
		ln.State = Modified
	}
}
