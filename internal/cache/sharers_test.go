package cache

import (
	"testing"
)

func TestSharerSetBasics(t *testing.T) {
	var s SharerSet
	if !s.None() || s.Count() != 0 {
		t.Fatal("zero set not empty")
	}
	// One bit in every 64-bit word, including the extremes.
	for _, vd := range []int{0, 1, 63, 64, 127, 128, 191, 192, 255} {
		s.Add(vd)
		if !s.Has(vd) {
			t.Fatalf("Has(%d) false after Add", vd)
		}
	}
	if s.Count() != 9 {
		t.Fatalf("Count = %d, want 9", s.Count())
	}
	if s.Has(62) || s.Has(65) || s.Has(254) {
		t.Fatal("Has reports unset members")
	}
	s.Remove(64)
	if s.Has(64) || s.Count() != 8 {
		t.Fatalf("Remove(64) left Has=%v Count=%d", s.Has(64), s.Count())
	}
	s.Remove(64) // idempotent
	if s.Count() != 8 {
		t.Fatal("double Remove changed the set")
	}
}

func TestSharerSetOnly(t *testing.T) {
	for _, vd := range []int{0, 63, 64, 200, 255} {
		var s SharerSet
		s.Add(vd)
		if !s.Only(vd) {
			t.Fatalf("Only(%d) false for singleton", vd)
		}
		if s.Only((vd + 1) % MaxSharers) {
			t.Fatalf("Only(%d) true for wrong member", (vd+1)%MaxSharers)
		}
		s.Add((vd + 7) % MaxSharers)
		if s.Only(vd) {
			t.Fatalf("Only(%d) true for two-element set", vd)
		}
	}
}

// TestSharerSetForEachAscending locks the iteration order the coherence
// paths rely on: ForEach must visit members in ascending VD order, exactly
// like the pre-SharerSet ascending bitmask loops, so invalidation order —
// and therefore latency and stats — stays byte-identical.
func TestSharerSetForEachAscending(t *testing.T) {
	var s SharerSet
	want := []int{0, 3, 63, 64, 65, 130, 255}
	for _, vd := range want {
		s.Add(vd)
	}
	var got []int
	s.ForEach(func(vd int) { got = append(got, vd) })
	if len(got) != len(want) {
		t.Fatalf("visited %d members, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("visit order %v, want %v", got, want)
		}
	}
}

// TestSharerSetBeyond64 is the regression test for the bug that forced the
// type to exist: with a uint64 bitmask, 1<<vd silently evaluates to 0 for
// vd >= 64, so a 65th versioned domain could never be tracked as a sharer.
func TestSharerSetBeyond64(t *testing.T) {
	var s SharerSet
	for vd := 0; vd < MaxSharers; vd++ {
		s.Add(vd)
	}
	if s.Count() != MaxSharers {
		t.Fatalf("Count = %d, want %d", s.Count(), MaxSharers)
	}
	for vd := 0; vd < MaxSharers; vd++ {
		if !s.Has(vd) {
			t.Fatalf("Has(%d) false with all domains sharing", vd)
		}
	}
}

func TestSharerSetString(t *testing.T) {
	var s SharerSet
	s.Add(0)
	s.Add(64)
	str := s.String()
	if str == "" || str == (SharerSet{}).String() {
		t.Fatalf("String not distinguishing: %q", str)
	}
}
