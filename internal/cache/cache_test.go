package cache

import (
	"testing"
	"testing/quick"
)

func small() *Cache { return New("t", 4*2*64, 2, 64) } // 4 sets, 2 ways

func TestStateString(t *testing.T) {
	cases := map[State]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M"}
	for s, want := range cases {
		if s.String() != want {
			t.Fatalf("%v.String() = %q", s, s.String())
		}
	}
	if State(9).String() != "?9" {
		t.Fatal("unknown state string")
	}
	if Shared.Writable() || Invalid.Writable() {
		t.Fatal("S/I must not be writable")
	}
	if !Exclusive.Writable() || !Modified.Writable() {
		t.Fatal("E/M must be writable")
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	for _, f := range []func(){
		func() { New("x", 0, 2, 64) },
		func() { New("x", 3*2*64, 2, 64) }, // 3 sets: not a power of two
		func() { New("x", 128, 0, 64) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestLookupMissThenHit(t *testing.T) {
	c := small()
	if c.Lookup(0x0) != nil {
		t.Fatal("lookup on empty cache hit")
	}
	ln, _, ev := c.Insert(0x0)
	if ev {
		t.Fatal("insert into empty cache evicted")
	}
	ln.State = Shared
	if got := c.Lookup(0x0); got == nil || got.Tag != 0 {
		t.Fatal("lookup after insert missed")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestInsertReusesResidentLine(t *testing.T) {
	c := small()
	ln1, _, _ := c.Insert(0x40)
	ln1.State = Modified
	ln1.OID = 7
	ln2, _, ev := c.Insert(0x40)
	if ev {
		t.Fatal("re-insert evicted")
	}
	if ln1 != ln2 {
		t.Fatal("re-insert did not reuse the resident slot")
	}
	if ln2.State != Modified || ln2.OID != 7 {
		t.Fatal("re-insert clobbered line contents")
	}
}

func TestLRUEviction(t *testing.T) {
	c := small() // 4 sets, 2 ways; set = (addr/64) % 4
	// Three addresses mapping to set 0: 0, 256, 512.
	a, b, x := uint64(0), uint64(256), uint64(512)
	ln, _, _ := c.Insert(a)
	ln.State = Shared
	ln, _, _ = c.Insert(b)
	ln.State = Shared
	c.Lookup(a) // make b the LRU way
	ln, victim, ev := c.Insert(x)
	if !ev {
		t.Fatal("expected eviction")
	}
	if victim.Tag != b {
		t.Fatalf("victim = %#x, want %#x (LRU)", victim.Tag, b)
	}
	ln.State = Shared
	if c.Peek(a) == nil || c.Peek(x) == nil || c.Peek(b) != nil {
		t.Fatal("post-eviction residency wrong")
	}
	if c.Evictions != 1 {
		t.Fatalf("evictions = %d", c.Evictions)
	}
}

func TestInvalidate(t *testing.T) {
	c := small()
	ln, _, _ := c.Insert(0x40)
	ln.State = Modified
	ln.Dirty = true
	removed, ok := c.Invalidate(0x40)
	if !ok || !removed.Dirty || removed.State != Modified {
		t.Fatalf("invalidate returned %+v ok=%v", removed, ok)
	}
	if _, ok := c.Invalidate(0x40); ok {
		t.Fatal("double invalidate found the line")
	}
	if c.Peek(0x40) != nil {
		t.Fatal("line still resident after invalidate")
	}
}

func TestPeekDoesNotTouchLRUOrStats(t *testing.T) {
	c := small()
	ln, _, _ := c.Insert(0)
	ln.State = Shared
	ln, _, _ = c.Insert(256)
	ln.State = Shared
	hits, misses := c.Hits, c.Misses
	c.Peek(0) // must not refresh LRU of 0
	if c.Hits != hits || c.Misses != misses {
		t.Fatal("peek changed stats")
	}
	_, victim, _ := c.Insert(512)
	if victim.Tag != 0 {
		t.Fatalf("victim = %#x; peek refreshed LRU", victim.Tag)
	}
}

func TestForEachAndCounts(t *testing.T) {
	c := small()
	for i := 0; i < 4; i++ {
		ln, _, _ := c.Insert(uint64(i * 64))
		ln.State = Modified
		ln.Dirty = i%2 == 0
	}
	if c.CountValid() != 4 {
		t.Fatalf("valid = %d", c.CountValid())
	}
	if c.CountDirty() != 2 {
		t.Fatalf("dirty = %d", c.CountDirty())
	}
	n := 0
	c.ForEach(func(ln *Line) {
		n++
		ln.OID = 42
	})
	if n != 4 {
		t.Fatalf("ForEach visited %d", n)
	}
	for _, ln := range c.CollectValid() {
		if ln.OID != 42 {
			t.Fatal("ForEach mutation not visible")
		}
	}
}

func TestFlush(t *testing.T) {
	c := small()
	ln, _, _ := c.Insert(0x40)
	ln.State = Modified
	ln.Dirty = true
	ln, _, _ = c.Insert(0x80)
	ln.State = Shared
	dirty := c.Flush()
	if len(dirty) != 1 || dirty[0].Tag != 0x40 {
		t.Fatalf("flush returned %v", dirty)
	}
	if c.CountValid() != 0 {
		t.Fatal("flush left valid lines")
	}
}

func TestGeometryAccessors(t *testing.T) {
	c := small()
	if c.Name() != "t" || c.Sets() != 4 || c.Ways() != 2 || c.Capacity() != 8 {
		t.Fatalf("geometry accessors wrong: %s %d %d %d", c.Name(), c.Sets(), c.Ways(), c.Capacity())
	}
}

// Property: after any insert sequence, (a) no set holds more lines than its
// associativity, (b) every resident address maps to its correct set, and
// (c) a line never appears twice.
func TestInsertInvariants(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := New("p", 8*4*64, 4, 64)
		for _, a := range addrs {
			addr := uint64(a) &^ 63
			ln, _, _ := c.Insert(addr)
			ln.State = Shared
		}
		seen := map[uint64]bool{}
		perSet := map[int]int{}
		ok := true
		c.ForEach(func(ln *Line) {
			if seen[ln.Tag] {
				ok = false
			}
			seen[ln.Tag] = true
			set := int((ln.Tag / 64) % uint64(c.Sets()))
			perSet[set]++
			if perSet[set] > c.Ways() {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a resident line always survives lookups (lookup never evicts).
func TestLookupNeverEvicts(t *testing.T) {
	f := func(addrs []uint16, probes []uint16) bool {
		c := New("p", 4*2*64, 2, 64)
		resident := map[uint64]bool{}
		for _, a := range addrs {
			addr := uint64(a) &^ 63
			ln, victim, ev := c.Insert(addr)
			ln.State = Shared
			if ev {
				delete(resident, victim.Tag)
			}
			resident[addr] = true
		}
		for _, p := range probes {
			c.Lookup(uint64(p) &^ 63)
		}
		for addr := range resident {
			if c.Peek(addr) == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
