// Package cache implements the set-associative cache arrays used for the
// simulated L1s, L2s and LLC slices. Lines carry MESI state, a dirty bit and
// the 16-bit OID (version) tag that NVOverlay adds to every cache tag in the
// hierarchy. Replacement is true LRU.
package cache

import "fmt"

// State is a MESI coherence state.
type State uint8

// MESI states. Invalid lines are also recognised by Line.Valid == false.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// String returns the one-letter MESI name.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("?%d", uint8(s))
	}
}

// Writable reports whether a line in this state may be stored to without a
// coherence transaction.
func (s State) Writable() bool { return s == Exclusive || s == Modified }

// Line is one cache slot. OID is the epoch in which the line's data was last
// written (the paper's 16-bit version tag; we hold it in a uint64 and let the
// epoch package narrow it when the wrap-around mode is exercised). Data is a
// compact stand-in for the line's 64-byte payload: workloads write opaque
// tokens into it, which lets recovery tests verify snapshot contents
// end-to-end without simulating full cache-line data.
type Line struct {
	Valid bool
	Tag   uint64 // full line address (line-aligned)
	State State
	Dirty bool
	OID   uint64
	Data  uint64
	lru   uint64
}

// Cache is one set-associative array.
type Cache struct {
	name     string
	sets     int
	ways     int
	lineSize int
	stride   int    // set-index divisor for address-interleaved slices
	lines    []Line // sets*ways, row-major by set
	tick     uint64
	scratch  []Line // reused by CollectValid/Flush (hot-path: no per-call alloc)

	// Stats.
	Hits, Misses, Evictions uint64
}

// New builds a cache of the given total size. size must be divisible by
// ways*lineSize and the resulting set count must be a power of two.
func New(name string, size, ways, lineSize int) *Cache {
	if size <= 0 || ways <= 0 || lineSize <= 0 {
		panic(fmt.Sprintf("cache %s: bad geometry size=%d ways=%d line=%d", name, size, ways, lineSize))
	}
	sets := size / (ways * lineSize)
	if sets == 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d not a power of two", name, sets))
	}
	return &Cache{
		name:     name,
		sets:     sets,
		ways:     ways,
		lineSize: lineSize,
		stride:   1,
		lines:    make([]Line, sets*ways),
	}
}

// NewStrided builds a cache slice of an address-interleaved array: lines
// are distributed over `stride` slices by low line bits, so this slice's
// set index skips those bits (real multi-slice LLCs do the same; without
// it, half the sets would alias with the slice selector and thrash).
func NewStrided(name string, size, ways, lineSize, stride int) *Cache {
	c := New(name, size, ways, lineSize)
	if stride < 1 {
		stride = 1
	}
	c.stride = stride
	return c
}

// Name returns the cache's name.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Capacity returns the number of line slots.
func (c *Cache) Capacity() int { return c.sets * c.ways }

func (c *Cache) setOf(addr uint64) int {
	return int((addr / uint64(c.lineSize) / uint64(c.stride)) % uint64(c.sets))
}

// Lookup returns the line holding addr, or nil on miss. A hit refreshes LRU
// and increments the hit counter; a miss increments the miss counter.
func (c *Cache) Lookup(addr uint64) *Line {
	set := c.setOf(addr)
	base := set * c.ways
	for i := 0; i < c.ways; i++ {
		ln := &c.lines[base+i]
		if ln.Valid && ln.Tag == addr {
			c.tick++
			ln.lru = c.tick
			c.Hits++
			return ln
		}
	}
	c.Misses++
	return nil
}

// Peek returns the line holding addr without touching LRU or counters.
func (c *Cache) Peek(addr uint64) *Line {
	set := c.setOf(addr)
	base := set * c.ways
	for i := 0; i < c.ways; i++ {
		ln := &c.lines[base+i]
		if ln.Valid && ln.Tag == addr {
			return ln
		}
	}
	return nil
}

// Insert places addr into the cache and returns the pointer to its line plus
// the evicted victim (by value) when an occupied slot had to be reclaimed.
// The caller is responsible for handling the victim (write-back, directory
// update) before using the new line. If addr is already resident its line is
// reused in place and no victim is produced.
func (c *Cache) Insert(addr uint64) (ln *Line, victim Line, evicted bool) {
	if existing := c.Peek(addr); existing != nil {
		c.tick++
		existing.lru = c.tick
		return existing, Line{}, false
	}
	set := c.setOf(addr)
	base := set * c.ways
	slot := -1
	for i := 0; i < c.ways; i++ {
		if !c.lines[base+i].Valid {
			slot = base + i
			break
		}
	}
	if slot == -1 {
		// Evict true-LRU way.
		oldest := base
		for i := 1; i < c.ways; i++ {
			if c.lines[base+i].lru < c.lines[oldest].lru {
				oldest = base + i
			}
		}
		slot = oldest
		victim = c.lines[slot]
		evicted = true
		c.Evictions++
	}
	c.tick++
	c.lines[slot] = Line{Valid: true, Tag: addr, State: Invalid, lru: c.tick}
	return &c.lines[slot], victim, evicted
}

// Invalidate removes addr from the cache, returning the removed line by
// value so the caller can inspect its dirty state, and whether it was found.
func (c *Cache) Invalidate(addr uint64) (Line, bool) {
	set := c.setOf(addr)
	base := set * c.ways
	for i := 0; i < c.ways; i++ {
		ln := &c.lines[base+i]
		if ln.Valid && ln.Tag == addr {
			removed := *ln
			*ln = Line{}
			return removed, true
		}
	}
	return Line{}, false
}

// ForEach invokes fn on every valid line. fn may mutate the line (the tag
// walker uses this to downgrade M lines after persisting them) but must not
// invalidate it; use CollectValid + Invalidate for removal.
func (c *Cache) ForEach(fn func(*Line)) {
	for i := range c.lines {
		if c.lines[i].Valid {
			fn(&c.lines[i])
		}
	}
}

// CollectValid returns copies of all valid lines; useful for walks that will
// mutate the cache while iterating. The returned slice is backed by a
// per-cache scratch buffer and is only valid until the next CollectValid or
// Flush call on the same cache; every caller consumes the previous result
// before asking again, so the eviction/walk paths run allocation-free.
func (c *Cache) CollectValid() []Line {
	out := c.scratchBuf()
	for i := range c.lines {
		if c.lines[i].Valid {
			out = append(out, c.lines[i])
		}
	}
	c.scratch = out
	return out
}

// scratchBuf returns the reusable line buffer, pre-sized on first use.
func (c *Cache) scratchBuf() []Line {
	if c.scratch == nil {
		n := c.sets * c.ways
		if n > 64 {
			n = 64
		}
		c.scratch = make([]Line, 0, n)
	}
	return c.scratch[:0]
}

// CountValid returns the number of valid lines.
func (c *Cache) CountValid() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].Valid {
			n++
		}
	}
	return n
}

// CountDirty returns the number of valid dirty lines.
func (c *Cache) CountDirty() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].Valid && c.lines[i].Dirty {
			n++
		}
	}
	return n
}

// Flush invalidates every line and returns the dirty ones (by value) so the
// caller can write them back. Used by epoch wrap-around resets and by
// end-of-run drains. Like CollectValid, the result shares the per-cache
// scratch buffer and is valid until the next CollectValid/Flush call on
// this cache.
func (c *Cache) Flush() []Line {
	dirty := c.scratchBuf()
	for i := range c.lines {
		if c.lines[i].Valid && c.lines[i].Dirty {
			dirty = append(dirty, c.lines[i])
		}
		c.lines[i] = Line{}
	}
	c.scratch = dirty
	return dirty
}
