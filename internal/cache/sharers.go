package cache

import (
	"fmt"
	"math/bits"
	"strings"
)

// sharerWords bounds SharerSet capacity: 4 words x 64 bits = 256 versioned
// domains, the big-machine ceiling enforced by sim.Config.Validate.
const sharerWords = 4

// MaxSharers is the largest versioned-domain id a SharerSet can hold, plus
// one. sim.Config.Validate rejects configurations with more VDs.
const MaxSharers = sharerWords * 64

// SharerSet is a fixed-capacity bitset of versioned-domain ids recorded in
// a directory entry. The original implementation used a bare uint64, which
// silently dropped sharers at 64+ domains (`1<<vd` is 0 for vd >= 64 in
// Go); the widened set keeps directory state exact up to MaxSharers
// domains while staying inline in DirEntry (no pointer, no allocation).
type SharerSet [sharerWords]uint64

// Add records vd as a sharer.
func (s *SharerSet) Add(vd int) { s[vd>>6] |= 1 << (uint(vd) & 63) }

// Remove clears vd from the set.
func (s *SharerSet) Remove(vd int) { s[vd>>6] &^= 1 << (uint(vd) & 63) }

// Has reports whether vd is in the set.
func (s SharerSet) Has(vd int) bool { return s[vd>>6]&(1<<(uint(vd)&63)) != 0 }

// None reports whether the set is empty.
func (s SharerSet) None() bool { return s[0]|s[1]|s[2]|s[3] == 0 }

// Only reports whether the set contains exactly vd and nothing else.
func (s SharerSet) Only(vd int) bool {
	var one SharerSet
	one.Add(vd)
	return s == one
}

// Count returns the number of sharers.
func (s SharerSet) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// ForEach calls fn for every sharer in ascending vd order — the same order
// the old `for vd := 0; vd < VDs; vd++` bitmask scans visited, so
// invalidation and writeback event ordering is unchanged. Unlike those
// scans it costs O(set bits), not O(VDs), which is what makes 256-domain
// directory probes cheap when a line has one or two sharers.
func (s SharerSet) ForEach(fn func(vd int)) {
	for wi, w := range s {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi<<6 | b)
			w &= w - 1
		}
	}
}

// String renders the set as a hex word list for invariant diagnostics.
func (s SharerSet) String() string {
	var b strings.Builder
	for wi := sharerWords - 1; wi >= 0; wi-- {
		if wi < sharerWords-1 {
			b.WriteByte('_')
		}
		fmt.Fprintf(&b, "%016x", s[wi])
	}
	return b.String()
}
