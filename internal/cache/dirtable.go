package cache

// DirEntry is one coherence-directory entry: the set of versioned domains
// holding a shared copy of a line, and the domain holding it exclusively
// (or -1). Both hierarchies (internal/coherence's MESI directory and
// internal/cst's version-access-protocol directory) track exactly this
// shape per line address, which is why the table lives here next to the
// cache arrays they also share.
type DirEntry struct {
	Sharers SharerSet // VDs with a (shared) copy
	Owner   int       // VD holding E/M, or -1
}

// Directory is a sharded open-addressing hash table from line address to
// DirEntry, replacing the built-in map on the per-access hot path: no
// per-entry heap allocation (entries live inline in slab slices), no
// hash-seed randomisation (iteration in slot order is deterministic, unlike
// Go map ranges), and deletion by tombstone so entry pointers handed out by
// GetOrCreate stay valid across deletions of *other* addresses within the
// same simulated access.
//
// Pointer validity contract: a *DirEntry returned by Get/GetOrCreate is
// invalidated by the next GetOrCreate (which may grow a shard) — callers
// resolve their entry once per simulated access and finish with it before
// installing new lines, matching how both hierarchies already sequence
// their directory traffic.
type Directory struct {
	shards [dirShards]dirShard
	n      int // live entries across all shards
}

const (
	dirShards    = 16 // power of two
	dirMinSlots  = 64 // initial slots per shard (power of two)
	slotEmpty    = 0
	slotUsed     = 1
	slotDeleted  = 2
	dirHashMulti = 0x9E3779B97F4A7C15 // 2^64 / golden ratio
)

type dirShard struct {
	state   []uint8
	keys    []uint64
	entries []DirEntry
	used    int // live entries
	dead    int // tombstones
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{}
}

// hash spreads the line address; line addresses differ only in upper bits
// (the low log2(lineSize) bits are zero), so a multiplicative mix is needed
// before masking.
func dirHash(addr uint64) uint64 { return addr * dirHashMulti }

func (d *Directory) shardOf(h uint64) *dirShard {
	return &d.shards[h&(dirShards-1)]
}

// Len returns the number of live entries.
func (d *Directory) Len() int { return d.n }

// Get returns the entry for addr, or nil when absent. The pointer is valid
// until the next GetOrCreate call (see the type comment).
func (d *Directory) Get(addr uint64) *DirEntry {
	h := dirHash(addr)
	s := d.shardOf(h)
	if s.used == 0 {
		return nil
	}
	mask := uint64(len(s.keys) - 1)
	for i := (h >> 4) & mask; ; i = (i + 1) & mask {
		switch s.state[i] {
		case slotEmpty:
			return nil
		case slotUsed:
			if s.keys[i] == addr {
				return &s.entries[i]
			}
		}
	}
}

// GetOrCreate returns the entry for addr, inserting {Owner: -1} when
// absent. Insertion may grow the shard, invalidating previously returned
// entry pointers.
func (d *Directory) GetOrCreate(addr uint64) *DirEntry {
	h := dirHash(addr)
	s := d.shardOf(h)
	if len(s.keys) == 0 || (s.used+s.dead+1)*4 > len(s.keys)*3 {
		s.rehash()
	}
	mask := uint64(len(s.keys) - 1)
	firstDead := -1
	for i := (h >> 4) & mask; ; i = (i + 1) & mask {
		switch s.state[i] {
		case slotEmpty:
			slot := i
			if firstDead >= 0 {
				slot = uint64(firstDead)
				s.dead--
			}
			s.state[slot] = slotUsed
			s.keys[slot] = addr
			s.entries[slot] = DirEntry{Owner: -1}
			s.used++
			d.n++
			return &s.entries[slot]
		case slotUsed:
			if s.keys[i] == addr {
				return &s.entries[i]
			}
		case slotDeleted:
			if firstDead < 0 {
				firstDead = int(i)
			}
		}
	}
}

// Delete removes addr's entry if present. Tombstone deletion: no other
// entry moves, so outstanding pointers to other entries stay valid.
func (d *Directory) Delete(addr uint64) {
	h := dirHash(addr)
	s := d.shardOf(h)
	if s.used == 0 {
		return
	}
	mask := uint64(len(s.keys) - 1)
	for i := (h >> 4) & mask; ; i = (i + 1) & mask {
		switch s.state[i] {
		case slotEmpty:
			return
		case slotUsed:
			if s.keys[i] == addr {
				s.state[i] = slotDeleted
				s.entries[i] = DirEntry{}
				s.used--
				s.dead++
				d.n--
				return
			}
		}
	}
}

// DeleteIfEmpty removes addr's entry when it records no sharers and no
// owner — the idiom both hierarchies use to keep the directory pruned to
// lines actually cached somewhere.
func (d *Directory) DeleteIfEmpty(addr uint64) {
	if e := d.Get(addr); e != nil && e.Sharers.None() && e.Owner == -1 {
		d.Delete(addr)
	}
}

// Reset empties the directory, retaining shard capacity for reuse.
func (d *Directory) Reset() {
	for i := range d.shards {
		s := &d.shards[i]
		for j := range s.state {
			s.state[j] = slotEmpty
		}
		s.used, s.dead = 0, 0
	}
	d.n = 0
}

// ForEach invokes fn on every live entry in deterministic (shard, slot)
// order. fn may mutate the entry and may Delete the entry it was handed
// (tombstones never move survivors); it must not insert.
func (d *Directory) ForEach(fn func(addr uint64, e *DirEntry)) {
	for i := range d.shards {
		s := &d.shards[i]
		for j := range s.state {
			if s.state[j] == slotUsed {
				fn(s.keys[j], &s.entries[j])
			}
		}
	}
}

// AppendKeys appends every live address to dst and returns it; callers sort
// the result when they need address order (invariant checks report the
// first violation in a stable order that way).
func (d *Directory) AppendKeys(dst []uint64) []uint64 {
	for i := range d.shards {
		s := &d.shards[i]
		for j := range s.state {
			if s.state[j] == slotUsed {
				dst = append(dst, s.keys[j])
			}
		}
	}
	return dst
}

// rehash grows (or compacts, when most slots are tombstones) the shard.
func (s *dirShard) rehash() {
	newLen := dirMinSlots
	for newLen < (s.used+1)*2 {
		newLen *= 2
	}
	oldState, oldKeys, oldEntries := s.state, s.keys, s.entries
	s.state = make([]uint8, newLen)
	s.keys = make([]uint64, newLen)
	s.entries = make([]DirEntry, newLen)
	s.dead = 0
	mask := uint64(newLen - 1)
	for i := range oldState {
		if oldState[i] != slotUsed {
			continue
		}
		h := dirHash(oldKeys[i])
		for j := (h >> 4) & mask; ; j = (j + 1) & mask {
			if s.state[j] == slotEmpty {
				s.state[j] = slotUsed
				s.keys[j] = oldKeys[i]
				s.entries[j] = oldEntries[i]
				break
			}
		}
	}
}
