package cache

import (
	"sort"
	"testing"
)

// refDir mirrors Directory operations on a plain map for cross-checking.
type refDir map[uint64]DirEntry

func TestDirectoryAgainstMapModel(t *testing.T) {
	d := NewDirectory()
	ref := refDir{}
	// Deterministic pseudo-random op stream over a working set with heavy
	// collisions (line-aligned addresses, as the hierarchies produce).
	x := uint64(0x2545F4914F6CDD1D)
	rnd := func() uint64 { x ^= x << 13; x ^= x >> 7; x ^= x << 17; return x }
	for step := 0; step < 200000; step++ {
		addr := (rnd() % 4096) << 6
		switch rnd() % 5 {
		case 0, 1: // GetOrCreate + mutate
			e := d.GetOrCreate(addr)
			if _, ok := ref[addr]; !ok {
				ref[addr] = DirEntry{Owner: -1}
			}
			re := ref[addr]
			if e.Sharers != re.Sharers || e.Owner != re.Owner {
				t.Fatalf("step %d: entry %#x = %+v, want %+v", step, addr, *e, re)
			}
			e.Sharers.Add(int(rnd() % 8))
			e.Owner = int(rnd()%8) - 1
			ref[addr] = *e
		case 2: // Get
			e := d.Get(addr)
			re, ok := ref[addr]
			if (e != nil) != ok {
				t.Fatalf("step %d: Get(%#x) presence %v, want %v", step, addr, e != nil, ok)
			}
			if e != nil && (*e != re) {
				t.Fatalf("step %d: Get(%#x) = %+v, want %+v", step, addr, *e, re)
			}
		case 3: // Delete
			d.Delete(addr)
			delete(ref, addr)
		case 4: // DeleteIfEmpty
			if e := d.Get(addr); e != nil {
				if rnd()%2 == 0 {
					e.Sharers = SharerSet{}
					e.Owner = -1
					ref[addr] = *e
				}
			}
			d.DeleteIfEmpty(addr)
			if re, ok := ref[addr]; ok && re.Sharers.None() && re.Owner == -1 {
				delete(ref, addr)
			}
		}
		if d.Len() != len(ref) {
			t.Fatalf("step %d: Len() = %d, want %d", step, d.Len(), len(ref))
		}
	}
	// Full-content comparison via AppendKeys.
	keys := d.AppendKeys(nil)
	if len(keys) != len(ref) {
		t.Fatalf("AppendKeys returned %d keys, want %d", len(keys), len(ref))
	}
	for _, k := range keys {
		re, ok := ref[k]
		if !ok {
			t.Fatalf("spurious key %#x", k)
		}
		if e := d.Get(k); *e != re {
			t.Fatalf("key %#x = %+v, want %+v", k, *e, re)
		}
	}
}

func TestDirectoryForEachDeterministicAndDeleteSafe(t *testing.T) {
	build := func() *Directory {
		d := NewDirectory()
		for i := uint64(0); i < 1000; i++ {
			e := d.GetOrCreate(i << 6)
			e.Sharers.Add(int(i % 256))
		}
		return d
	}
	var order1, order2 []uint64
	build().ForEach(func(addr uint64, e *DirEntry) { order1 = append(order1, addr) })
	build().ForEach(func(addr uint64, e *DirEntry) { order2 = append(order2, addr) })
	if len(order1) != 1000 || len(order2) != 1000 {
		t.Fatalf("ForEach visited %d/%d entries, want 1000", len(order1), len(order2))
	}
	for i := range order1 {
		if order1[i] != order2[i] {
			t.Fatalf("ForEach order differs at %d: %#x vs %#x", i, order1[i], order2[i])
		}
	}
	// Deleting the visited entry mid-iteration must not skip or repeat.
	d := build()
	visited := map[uint64]bool{}
	d.ForEach(func(addr uint64, e *DirEntry) {
		if visited[addr] {
			t.Fatalf("entry %#x visited twice", addr)
		}
		visited[addr] = true
		if addr%(2<<6) == 0 {
			d.Delete(addr)
		}
	})
	if len(visited) != 1000 {
		t.Fatalf("visited %d entries, want 1000", len(visited))
	}
	if d.Len() != 500 {
		t.Fatalf("after deleting half: Len() = %d, want 500", d.Len())
	}
}

func TestDirectoryPointerStableAcrossForeignDeletes(t *testing.T) {
	d := NewDirectory()
	addrs := make([]uint64, 256)
	for i := range addrs {
		addrs[i] = uint64(i+1) << 6
		d.GetOrCreate(addrs[i])
	}
	e := d.Get(addrs[17])
	want := SharerSet{}
	for _, vd := range []int{0, 1, 3, 5, 7} {
		e.Sharers.Add(vd)
		want.Add(vd)
	}
	e.Owner = 3
	// Tombstone-delete many other addresses; the pointer must stay valid
	// (no insertions happen, so no rehash can move it).
	for i, a := range addrs {
		if i != 17 {
			d.Delete(a)
		}
	}
	if e.Sharers != want || e.Owner != 3 {
		t.Fatalf("entry moved or corrupted by foreign deletes: %+v", *e)
	}
	if got := d.Get(addrs[17]); got != e {
		t.Fatalf("lookup after deletes returned a different slot")
	}
}

func TestDirectoryReset(t *testing.T) {
	d := NewDirectory()
	for i := uint64(0); i < 100; i++ {
		d.GetOrCreate(i << 6)
	}
	d.Reset()
	if d.Len() != 0 {
		t.Fatalf("Len after Reset = %d", d.Len())
	}
	if keys := d.AppendKeys(nil); len(keys) != 0 {
		t.Fatalf("AppendKeys after Reset = %v", keys)
	}
	// Reusable after reset.
	d.GetOrCreate(64).Sharers.Add(0)
	keys := d.AppendKeys(nil)
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	if len(keys) != 1 || keys[0] != 64 {
		t.Fatalf("post-Reset insert: keys = %v", keys)
	}
}
