package sim

import (
	"testing"
	"testing/quick"
)

func TestDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if cfg.VDs() != 8 {
		t.Fatalf("VDs = %d, want 8", cfg.VDs())
	}
	if cfg.VDOf(0) != 0 || cfg.VDOf(1) != 0 || cfg.VDOf(2) != 1 || cfg.VDOf(15) != 7 {
		t.Fatal("VDOf mapping wrong")
	}
	if cfg.LinesPerPage() != 64 {
		t.Fatalf("LinesPerPage = %d", cfg.LinesPerPage())
	}
}

func TestConfigValidateRejects(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.CoresPerVD = 3 }, // does not divide 16
		func(c *Config) { c.LLCSlices = 0 },
		func(c *Config) { c.LineSize = 48 },
		func(c *Config) { c.L1Size = 1000 },
		func(c *Config) { c.L2Size = 1000 },
		func(c *Config) { c.LLCSize = 12345 },
		func(c *Config) { c.EpochSize = 0 },
		func(c *Config) { c.PageSize = 32 },
		func(c *Config) { c.SuperBlock = 3 },
		func(c *Config) { c.NVMBanks = 0 },
		func(c *Config) { c.WrapEpochs = true; c.WrapWidth = 2 },
	}
	for i, mutate := range cases {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestLineAndPageAddr(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.LineAddr(0x12345); got != 0x12340 {
		t.Fatalf("LineAddr = %#x", got)
	}
	if got := cfg.PageAddr(0x12345); got != 0x12000 {
		t.Fatalf("PageAddr = %#x", got)
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(8)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 equal values", same)
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := r.Uint64n(7); v >= 7 {
			t.Fatalf("Uint64n out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %f", f)
		}
	}
}

func TestRNGPanics(t *testing.T) {
	r := NewRNG(1)
	mustPanic(t, func() { r.Intn(0) })
	mustPanic(t, func() { r.Uint64n(0) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

// Property: Perm always returns a permutation of [0,n).
func TestRNGPermProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := NewRNG(seed)
		size := int(n%64) + 1
		p := r.Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGShuffleIsPermutation(t *testing.T) {
	r := NewRNG(3)
	xs := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	sum := uint64(0)
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(xs)
	var got uint64
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatal("shuffle changed multiset")
	}
}

func TestClocksBasics(t *testing.T) {
	c := NewClocks(4)
	if c.Len() != 4 {
		t.Fatalf("len = %d", c.Len())
	}
	c.Advance(1, 10)
	c.Advance(2, 5)
	if c.Min() != 0 {
		t.Fatalf("min = %d, want 0", c.Min())
	}
	c.Advance(0, 20)
	c.Advance(3, 30)
	if c.Min() != 2 {
		t.Fatalf("min = %d, want 2", c.Min())
	}
	if c.Max() != 30 {
		t.Fatalf("max = %d", c.Max())
	}
	c.AdvanceTo(2, 3) // no-op, behind current time
	if c.Now(2) != 5 {
		t.Fatal("AdvanceTo moved clock backwards")
	}
	c.AdvanceTo(2, 50)
	if c.Now(2) != 50 {
		t.Fatal("AdvanceTo did not advance")
	}
}

func TestClocksMinAmong(t *testing.T) {
	c := NewClocks(3)
	c.Advance(0, 5)
	c.Advance(1, 1)
	c.Advance(2, 9)
	live := []bool{true, false, true}
	if got := c.MinAmong(live); got != 0 {
		t.Fatalf("MinAmong = %d, want 0", got)
	}
	if got := c.MinAmong([]bool{false, false, false}); got != -1 {
		t.Fatalf("MinAmong all-dead = %d, want -1", got)
	}
}

func TestClocksStallGroup(t *testing.T) {
	c := NewClocks(4)
	c.Advance(0, 10)
	c.Advance(1, 20)
	c.StallGroup(0, 2, 100)
	if c.Now(0) != 120 || c.Now(1) != 120 {
		t.Fatalf("group clocks = %d,%d, want 120,120", c.Now(0), c.Now(1))
	}
	if c.Now(2) != 0 || c.Now(3) != 0 {
		t.Fatal("StallGroup touched threads outside the group")
	}
}

// Property: Min always returns an index whose clock is <= all others.
func TestClocksMinProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		c := NewClocks(len(vals))
		for i, v := range vals {
			c.Advance(i, uint64(v))
		}
		m := c.Min()
		for i := range vals {
			if c.Now(m) > c.Now(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClocksRetireAndMinLive(t *testing.T) {
	c := NewClocks(5)
	for i := 0; i < 5; i++ {
		c.Advance(i, uint64(10*(i+1)))
	}
	if got := c.MinLive(); got != 0 {
		t.Fatalf("MinLive = %d, want 0", got)
	}
	c.Retire(0)
	c.Retire(1)
	if got := c.MinLive(); got != 2 {
		t.Fatalf("MinLive after retiring 0,1 = %d, want 2", got)
	}
	c.Advance(2, 1000)
	if got := c.MinLive(); got != 3 {
		t.Fatalf("MinLive after advancing 2 = %d, want 3", got)
	}
	for i := 2; i < 5; i++ {
		c.Retire(i)
	}
	if got := c.MinLive(); got != -1 {
		t.Fatalf("MinLive all-retired = %d, want -1", got)
	}
}

// Property: the tournament tree agrees with the linear reference scan —
// same winner, including MinAmong's first-minimum tie-break — through any
// interleaving of advances and retirements. This is the equivalence that
// keeps the big-machine driver loop byte-identical to the old
// live-slice/MinAmong loop.
func TestClocksTournamentMatchesMinAmong(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16, 64, 100, 256} {
		rng := NewRNG(int64(n))
		c := NewClocks(n)
		live := make([]bool, n)
		for i := range live {
			live[i] = true
		}
		for step := 0; step < 2000; step++ {
			want := c.MinAmong(live)
			if got := c.MinLive(); got != want {
				t.Fatalf("n=%d step %d: MinLive = %d, MinAmong = %d", n, step, got, want)
			}
			if want < 0 {
				break
			}
			// Mostly advance the winner (the driver's pattern), sometimes a
			// random live thread, occasionally retire one.
			switch rng.Intn(10) {
			case 0:
				c.Retire(want)
				live[want] = false
			case 1:
				tid := rng.Intn(n)
				if live[tid] {
					c.AdvanceTo(tid, c.Now(tid)+uint64(rng.Intn(50)))
				}
			default:
				c.Advance(want, uint64(rng.Intn(20))) // ties are common on 0
			}
		}
	}
}
