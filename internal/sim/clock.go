package sim

// Clocks tracks per-thread simulated time. The trace driver always steps the
// thread whose clock is smallest (conservative parallel-discrete-event
// interleaving), which both serialises the hierarchy and yields a realistic
// interleaving of the 16 worker threads.
type Clocks struct {
	now []uint64
}

// NewClocks returns n thread clocks, all at zero.
func NewClocks(n int) *Clocks {
	return &Clocks{now: make([]uint64, n)}
}

// Len returns the number of threads tracked.
func (c *Clocks) Len() int { return len(c.now) }

// Now returns thread tid's local time.
func (c *Clocks) Now(tid int) uint64 { return c.now[tid] }

// Advance moves thread tid forward by delta cycles.
func (c *Clocks) Advance(tid int, delta uint64) { c.now[tid] += delta }

// AdvanceTo moves thread tid forward to at least t.
func (c *Clocks) AdvanceTo(tid int, t uint64) {
	if c.now[tid] < t {
		c.now[tid] = t
	}
}

// Min returns the id of the thread with the smallest clock (ties broken by
// lowest id, keeping the interleaving deterministic).
func (c *Clocks) Min() int {
	best := 0
	for i := 1; i < len(c.now); i++ {
		if c.now[i] < c.now[best] {
			best = i
		}
	}
	return best
}

// MinAmong returns the live thread with the smallest clock, or -1 when no
// thread is live.
func (c *Clocks) MinAmong(live []bool) int {
	best := -1
	for i := range c.now {
		if !live[i] {
			continue
		}
		if best == -1 || c.now[i] < c.now[best] {
			best = i
		}
	}
	return best
}

// Max returns the largest clock value; this is the run's wall-clock cycle
// count (all threads join at the end).
func (c *Clocks) Max() uint64 {
	var m uint64
	for _, t := range c.now {
		if t > m {
			m = t
		}
	}
	return m
}

// StallGroup advances every thread in [lo,hi) to at least t plus cost. It
// models a versioned domain draining and stalling its pipelines, e.g. during
// a coherence-driven epoch advance.
func (c *Clocks) StallGroup(lo, hi int, cost uint64) {
	var t uint64
	for i := lo; i < hi; i++ {
		if c.now[i] > t {
			t = c.now[i]
		}
	}
	t += cost
	for i := lo; i < hi; i++ {
		c.now[i] = t
	}
}
