package sim

// Clocks tracks per-thread simulated time. The trace driver always steps the
// thread whose clock is smallest (conservative parallel-discrete-event
// interleaving), which both serialises the hierarchy and yields a realistic
// interleaving of the worker threads.
//
// The smallest-clock query is served by a tournament tree maintained on
// every clock mutation: O(log n) per update instead of the old O(n) scan
// per driver step, which dominated the profile at 256 cores. Ties select
// the lowest thread id — each internal node prefers its left child on
// equal clocks and every left subtree holds strictly lower ids, so the
// tree reproduces the old linear scan's choice exactly.
type Clocks struct {
	now  []uint64
	tree []int32 // tree[1] is the overall winner; -1 marks retired/padding
	base int     // leaf offset: smallest power of two >= len(now)
}

// NewClocks returns n thread clocks, all at zero.
func NewClocks(n int) *Clocks {
	base := 1
	for base < n {
		base <<= 1
	}
	c := &Clocks{now: make([]uint64, n), tree: make([]int32, 2*base), base: base}
	for i := range c.tree {
		c.tree[i] = -1
	}
	for i := 0; i < n; i++ {
		c.tree[base+i] = int32(i)
	}
	for i := base - 1; i >= 1; i-- {
		c.tree[i] = c.winner(c.tree[2*i], c.tree[2*i+1])
	}
	return c
}

// winner picks the smaller-clock contender; a is always from the left
// subtree (lower ids), so returning a on ties breaks them by lowest id.
func (c *Clocks) winner(a, b int32) int32 {
	if a < 0 {
		return b
	}
	if b < 0 {
		return a
	}
	if c.now[b] < c.now[a] {
		return b
	}
	return a
}

// fixup replays tid's matches up to the root after its clock (or liveness)
// changed.
func (c *Clocks) fixup(tid int) {
	for i := (c.base + tid) >> 1; i >= 1; i >>= 1 {
		c.tree[i] = c.winner(c.tree[2*i], c.tree[2*i+1])
	}
}

// Len returns the number of threads tracked.
func (c *Clocks) Len() int { return len(c.now) }

// Now returns thread tid's local time.
func (c *Clocks) Now(tid int) uint64 { return c.now[tid] }

// Advance moves thread tid forward by delta cycles.
func (c *Clocks) Advance(tid int, delta uint64) {
	c.now[tid] += delta
	c.fixup(tid)
}

// AdvanceTo moves thread tid forward to at least t.
func (c *Clocks) AdvanceTo(tid int, t uint64) {
	if c.now[tid] < t {
		c.now[tid] = t
		c.fixup(tid)
	}
}

// Retire marks thread tid finished: it no longer contends for the minimum.
func (c *Clocks) Retire(tid int) {
	c.tree[c.base+tid] = -1
	c.fixup(tid)
}

// MinLive returns the non-retired thread with the smallest clock (ties
// broken by lowest id), or -1 when every thread has retired.
func (c *Clocks) MinLive() int { return int(c.tree[1]) }

// Min returns the id of the thread with the smallest clock (ties broken by
// lowest id, keeping the interleaving deterministic).
func (c *Clocks) Min() int {
	best := 0
	for i := 1; i < len(c.now); i++ {
		if c.now[i] < c.now[best] {
			best = i
		}
	}
	return best
}

// MinAmong returns the live thread with the smallest clock, or -1 when no
// thread is live.
func (c *Clocks) MinAmong(live []bool) int {
	best := -1
	for i := range c.now {
		if !live[i] {
			continue
		}
		if best == -1 || c.now[i] < c.now[best] {
			best = i
		}
	}
	return best
}

// Max returns the largest clock value; this is the run's wall-clock cycle
// count (all threads join at the end).
func (c *Clocks) Max() uint64 {
	var m uint64
	for _, t := range c.now {
		if t > m {
			m = t
		}
	}
	return m
}

// StallGroup advances every thread in [lo,hi) to at least t plus cost. It
// models a versioned domain draining and stalling its pipelines, e.g. during
// a coherence-driven epoch advance.
func (c *Clocks) StallGroup(lo, hi int, cost uint64) {
	var t uint64
	for i := lo; i < hi; i++ {
		if c.now[i] > t {
			t = c.now[i]
		}
	}
	t += cost
	for i := lo; i < hi; i++ {
		c.now[i] = t
		c.fixup(i)
	}
}
