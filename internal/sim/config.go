// Package sim provides the simulation substrate shared by every scheme: the
// machine configuration (paper Table II), a deterministic PRNG, and the
// per-thread clock bookkeeping used for smallest-clock-first interleaving.
package sim

import (
	"fmt"

	"repro/internal/obs"
)

// Config describes the simulated machine and run parameters. The defaults
// returned by DefaultConfig mirror Table II of the NVOverlay paper.
type Config struct {
	// Topology.
	Cores      int // total cores (paper: 16)
	CoresPerVD int // cores sharing one L2 / versioned domain (paper: 2)
	LLCSlices  int // distributed LLC slices (paper-style multi-slice LLC)
	// OMCs is the number of overlay memory controllers sharing the NVM
	// plane. 0 selects the historical default of 4 (the paper's 16-core
	// machine); big-machine scale configs raise it so per-OMC epoch tables
	// and bank queues stay proportionate to core count.
	OMCs int

	// Cache geometry. Sizes are in bytes; LineSize divides all of them.
	LineSize int
	L1Size   int
	L1Ways   int
	L2Size   int
	L2Ways   int
	LLCSize  int // total across all slices
	LLCWays  int

	// Latencies in core cycles (3 GHz clock).
	L1Latency     uint64
	L2Latency     uint64
	LLCLatency    uint64
	DRAMLatency   uint64
	NVMReadLat    uint64
	NVMWriteLat   uint64 // per-line bank occupancy (133 ns at 3 GHz ≈ 400)
	RemoteL2Lat   uint64 // extra hop for inter-VD forwarding
	ClockHz       float64
	NVMBanks      int
	NVMMaxBacklog uint64 // bank backlog beyond which issuing access stalls

	// Snapshotting.
	EpochSize        int    // stores per VD before a local epoch advance
	EpochAdvanceCost uint64 // drain + context dump cost per VD advance
	ContextDumpBytes int64  // bytes of processor context persisted per advance
	// Bursts overrides the epoch size for store-count windows, modelling
	// the paper's Fig 17b time-travel-debugging scenario where programmers
	// manually open tiny epochs around suspicious code regions.
	Bursts []Burst

	// NVOverlay-specific switches.
	TagWalker     bool // enable the per-VD L2 tag walker
	OMCBuffer     bool // enable the battery-backed OMC write-back cache
	OMCBufferSize int  // bytes; defaults to LLC size as in the paper
	SuperBlock    int  // DRAM OID granularity in lines (1 or 4, §V-F)

	// MNM storage management.
	NVMPoolPages int   // page-pool quota; 0 means unbounded
	PageSize     int   // NVM data page size
	WrapEpochs   bool  // exercise the 16-bit two-group wrap-around path
	WrapWidth    uint  // epoch wire width in bits when WrapEpochs is set
	Seed         int64 // PRNG seed for workloads

	// Fault injection (robustness harness). FaultClass selects a named
	// deterministic NVM fault regime ("", "torn", "flip", "loss", "nak",
	// "all"); FaultSeed seeds the injector's PRNG (0: derived from Seed so
	// faulted runs replay from the workload seed alone).
	FaultClass string
	FaultSeed  int64

	// Durable store. StoreDir, when non-empty, backs the NVM content plane
	// with the append/checkpoint file format under that directory (a fresh
	// one; drivers refuse an existing store). Empty keeps the historical
	// in-memory plane: runs are byte-identical to pre-file-plane behaviour.
	// CheckpointEvery sets base-image cadence in epoch seals (0: default).
	StoreDir        string
	CheckpointEvery int

	// TimeSeriesBuckets controls Fig-17-style bandwidth bucketing.
	TimeSeriesBuckets int

	// Obs, when non-nil, receives the run's structured event stream
	// (internal/obs sits below sim in the dependency tower, so pointing at
	// it from here creates no cycle). Components cache the bus at
	// construction; a nil bus costs one pointer check per emission site.
	Obs *obs.Bus
}

// DefaultConfig returns the paper's Table II machine. EpochSize here is
// expressed in store uops per VD; experiments scale it alongside the trace
// length so the walk/boundary frequency matches the paper's proportions.
func DefaultConfig() Config {
	return Config{
		Cores:      16,
		CoresPerVD: 2,
		LLCSlices:  8,

		LineSize: 64,
		L1Size:   32 << 10,
		L1Ways:   8,
		L2Size:   256 << 10,
		L2Ways:   8,
		LLCSize:  32 << 20,
		LLCWays:  16,

		L1Latency:     4,
		L2Latency:     8,
		LLCLatency:    30,
		DRAMLatency:   200,
		NVMReadLat:    300,
		NVMWriteLat:   400, // 133 ns at 3 GHz
		RemoteL2Lat:   30,
		ClockHz:       3e9,
		NVMBanks:      16,
		NVMMaxBacklog: 160_000, // ~400 writes deep per bank: the write-back
		// DRAM buffer of §VI-B absorbs bursts; only sustained
		// oversubscription backpressures execution.

		EpochSize:        100_000,
		EpochAdvanceCost: 1000,
		ContextDumpBytes: 2048, // architectural context per VD advance

		TagWalker:     true,
		OMCBuffer:     false,
		OMCBufferSize: 0,
		SuperBlock:    1,

		NVMPoolPages: 0,
		PageSize:     4096,
		WrapEpochs:   false,
		WrapWidth:    16,
		Seed:         42,

		TimeSeriesBuckets: 100,
	}
}

// Burst is one store-count window with an overridden epoch size.
type Burst struct {
	From, To uint64 // store-count window [From, To)
	Size     int    // epoch size inside the window
}

// EpochSizeAt returns the epoch length in effect after `stores` stores
// (per VD for NVOverlay's distributed epochs, global for the baselines).
func (c *Config) EpochSizeAt(stores uint64) int {
	for _, b := range c.Bursts {
		if stores >= b.From && stores < b.To {
			return b.Size
		}
	}
	return c.EpochSize
}

// VDs returns the number of versioned domains implied by the topology.
func (c *Config) VDs() int { return c.Cores / c.CoresPerVD }

// VDOf maps a core/thread id to its versioned domain.
func (c *Config) VDOf(tid int) int { return tid / c.CoresPerVD }

// LinesPerPage returns cache lines per NVM data page.
func (c *Config) LinesPerPage() int { return c.PageSize / c.LineSize }

// Validate checks internal consistency and returns a descriptive error for
// the first violated constraint.
func (c *Config) Validate() error {
	switch {
	case c.Cores <= 0:
		return fmt.Errorf("sim: Cores must be positive, got %d", c.Cores)
	case c.CoresPerVD <= 0 || c.Cores%c.CoresPerVD != 0:
		return fmt.Errorf("sim: CoresPerVD %d must divide Cores %d", c.CoresPerVD, c.Cores)
	case c.VDs() > maxVDs:
		// The bound is cache.SharerSet's fixed capacity (sim sits below
		// cache in the dependency tower, so the constant is mirrored here).
		return fmt.Errorf("sim: %d versioned domains exceed the directory's %d-domain capacity",
			c.VDs(), maxVDs)
	case c.OMCs < 0:
		return fmt.Errorf("sim: OMCs must be non-negative, got %d", c.OMCs)
	case c.LLCSlices <= 0:
		return fmt.Errorf("sim: LLCSlices must be positive, got %d", c.LLCSlices)
	case c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0:
		return fmt.Errorf("sim: LineSize must be a power of two, got %d", c.LineSize)
	case c.L1Size%(c.LineSize*c.L1Ways) != 0:
		return fmt.Errorf("sim: L1 geometry %d/%d-way not line-divisible", c.L1Size, c.L1Ways)
	case c.L2Size%(c.LineSize*c.L2Ways) != 0:
		return fmt.Errorf("sim: L2 geometry %d/%d-way not line-divisible", c.L2Size, c.L2Ways)
	case c.LLCSize%(c.LineSize*c.LLCWays*c.LLCSlices) != 0:
		return fmt.Errorf("sim: LLC geometry %d/%d-way/%d-slice not line-divisible",
			c.LLCSize, c.LLCWays, c.LLCSlices)
	case c.EpochSize <= 0:
		return fmt.Errorf("sim: EpochSize must be positive, got %d", c.EpochSize)
	case c.PageSize < c.LineSize || c.PageSize%c.LineSize != 0:
		return fmt.Errorf("sim: PageSize %d must be a multiple of LineSize %d", c.PageSize, c.LineSize)
	case c.SuperBlock != 1 && c.SuperBlock != 4:
		return fmt.Errorf("sim: SuperBlock must be 1 or 4, got %d", c.SuperBlock)
	case c.NVMBanks <= 0:
		return fmt.Errorf("sim: NVMBanks must be positive, got %d", c.NVMBanks)
	case c.WrapEpochs && (c.WrapWidth < 4 || c.WrapWidth > 16):
		return fmt.Errorf("sim: WrapWidth must be in [4,16], got %d", c.WrapWidth)
	case !validFaultClass(c.FaultClass):
		return fmt.Errorf("sim: unknown FaultClass %q (\"\", torn, flip, loss, nak, all)", c.FaultClass)
	case c.CheckpointEvery < 0:
		return fmt.Errorf("sim: CheckpointEvery must be non-negative, got %d", c.CheckpointEvery)
	}
	return nil
}

// maxVDs mirrors cache.MaxSharers (the SharerSet capacity) without
// importing it.
const maxVDs = 256

// validFaultClass mirrors fault.ValidClass without importing it (sim is the
// bottom of the dependency tower).
func validFaultClass(name string) bool {
	switch name {
	case "", "torn", "flip", "loss", "nak", "all":
		return true
	}
	return false
}

// EffectiveFaultSeed returns the injector seed: FaultSeed when set,
// otherwise a fixed mix of the workload seed so a faulted run replays
// byte-identically from -seed alone.
func (c *Config) EffectiveFaultSeed() int64 {
	if c.FaultSeed != 0 {
		return c.FaultSeed
	}
	return c.Seed ^ 0x6661756c74 // "fault"
}

// LineAddr masks addr down to its cache-line address.
func (c *Config) LineAddr(addr uint64) uint64 {
	return addr &^ uint64(c.LineSize-1)
}

// PageAddr masks addr down to its page address.
func (c *Config) PageAddr(addr uint64) uint64 {
	return addr &^ uint64(c.PageSize-1)
}
