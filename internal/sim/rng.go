package sim

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64-seeded xorshift128+). Workload generators use it instead of
// math/rand so that traces are bit-identical across runs and Go versions —
// determinism is what makes the experiment harness and the crash-recovery
// verifier trustworthy.
type RNG struct {
	s0, s1 uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed int64) *RNG {
	r := &RNG{}
	z := uint64(seed) + 0x9e3779b97f4a7c15
	r.s0 = splitmix(&z)
	r.s1 = splitmix(&z)
	if r.s0 == 0 && r.s1 == 0 {
		r.s1 = 1
	}
	return r
}

func splitmix(z *uint64) uint64 {
	*z += 0x9e3779b97f4a7c15
	x := *z
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Uint64 returns the next 64-bit value.
func (r *RNG) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Intn returns a value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a value in [0, n). n must be positive.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes xs in place.
func (r *RNG) Shuffle(xs []uint64) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}
