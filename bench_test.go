// Package repro's root benchmark suite regenerates each figure of the
// paper's evaluation as a testing.B benchmark (one per table/figure), and
// reports the headline quantity of each as a custom metric. Run with:
//
//	go test -bench=. -benchmem .
//
// Benchmarks use the smoke scale so the full suite completes in minutes;
// cmd/nvbench -scale quick produces the EXPERIMENTS.md numbers.
package repro

import (
	"io"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tracefile"
)

// BenchmarkTable2 measures raw simulator throughput on the ideal machine
// (Table II substrate): accesses simulated per second.
func BenchmarkTable2IdealSubstrate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Run("Ideal", "btree", experiments.Smoke, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Sum.Accesses), "accesses/op")
	}
}

// BenchmarkFig11 reruns the normalized-cycles comparison on the B+Tree
// workload and reports NVOverlay's slowdown over the ideal system.
func BenchmarkFig11NormalizedCycles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := experiments.Fig11(experiments.Smoke, []string{"btree"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(m.Get("btree", "NVOverlay"), "nvoverlay-x")
		b.ReportMetric(m.Get("btree", "PiCL"), "picl-x")
		b.ReportMetric(m.Get("btree", "SWLog"), "swlog-x")
	}
}

// BenchmarkFig12 reruns the write-amplification comparison and reports
// PiCL's bytes relative to NVOverlay.
func BenchmarkFig12WriteAmplification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := experiments.Fig12(experiments.Smoke, []string{"btree"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(m.Get("btree", "PiCL"), "picl-x")
		b.ReportMetric(m.Get("btree", "PiCL-L2"), "picl-l2-x")
		b.ReportMetric(m.Get("btree", "HWShadow"), "hwshadow-x")
	}
}

// BenchmarkFig13 reruns the mapping-metadata-cost measurement and reports
// the Master Table's share of the write working set.
func BenchmarkFig13MasterTableCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig13(experiments.Smoke, []string{"btree"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].MasterPct, "master-pct")
		b.ReportMetric(rows[0].LeafOccupancy, "leaf-occ")
	}
}

// BenchmarkFig14 reruns the epoch-size sensitivity sweep on ART and
// reports PiCL's byte reduction from the smallest to the largest epoch.
func BenchmarkFig14EpochSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig14(experiments.Smoke)
		if err != nil {
			b.Fatal(err)
		}
		var small, big int64
		for _, p := range pts {
			if p.Scheme != "PiCL" {
				continue
			}
			if small == 0 {
				small = p.RawBytes
			}
			big = p.RawBytes
		}
		b.ReportMetric(float64(small-big)/float64(small)*100, "picl-byte-drop-pct")
	}
}

// BenchmarkFig15 reruns the evict-reason decomposition on ART and reports
// each scheme's tag-walker dependence.
func BenchmarkFig15EvictReasons(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig15(experiments.Smoke)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.Walker {
				continue
			}
			switch r.Scheme {
			case "PiCL":
				b.ReportMetric(r.WalkPct, "picl-walk-pct")
			case "NVOverlay":
				b.ReportMetric(r.WalkPct, "nvoverlay-walk-pct")
			}
		}
	}
}

// BenchmarkFig16 reruns the OMC-buffer ablation and reports the buffer hit
// rate and the cycle cost of running without it.
func BenchmarkFig16OMCBuffer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig16(experiments.Smoke)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.BufferHitRate, "hit-pct")
		b.ReportMetric(r.NormCyclesNoBuffer, "nobuffer-x")
	}
}

// BenchmarkFig17 reruns the bandwidth time series on B+Tree and reports
// the PiCL/NVOverlay total-traffic ratio.
func BenchmarkFig17Bandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig17(experiments.Smoke, false)
		if err != nil {
			b.Fatal(err)
		}
		var picl, nvo float64
		for _, s := range series {
			if s.Scheme == "PiCL" {
				picl = float64(s.Series.Total())
			} else {
				nvo = float64(s.Series.Total())
			}
		}
		b.ReportMetric(picl/nvo, "picl-over-nvo")
	}
}

// BenchmarkFig17Bursty reruns the bursty-epoch variant (time-travel
// debugging watch points).
func BenchmarkFig17BurstyEpochs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig17(experiments.Smoke, true)
		if err != nil {
			b.Fatal(err)
		}
		var picl, nvo float64
		for _, s := range series {
			if s.Scheme == "PiCL" {
				picl = float64(s.Series.Total())
			} else {
				nvo = float64(s.Series.Total())
			}
		}
		b.ReportMetric(picl/nvo, "picl-over-nvo")
	}
}

// BenchmarkAblateWalker measures the walker on/off cycle delta.
func BenchmarkAblateWalker(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblateWalker(experiments.Smoke)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.CyclesOff)/float64(r.CyclesOn), "off-over-on")
	}
}

// BenchmarkAblateSuperBlock measures the §V-F side-band trade-off.
func BenchmarkAblateSuperBlock(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblateSuperBlock(experiments.Smoke)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.SideBandBytesLine)/float64(r.SideBandBytesSuper), "sideband-saving-x")
	}
}

// BenchmarkSchemes measures end-to-end simulation throughput per scheme on
// one workload (accesses simulated per wall-clock second appear as the
// benchmark's ns/op).
func BenchmarkSchemes(b *testing.B) {
	for _, scheme := range append([]string{"Ideal"}, experiments.SchemeNames...) {
		b.Run(scheme, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Run(scheme, "vacation", experiments.Smoke, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFileSeal measures the file-backed durable plane end to end:
// per iteration it writes a fresh store (apply bursts, seal epochs,
// checkpoint, manifest renames) and cold-reopens it the way a restarted
// process would, with the reopened image verified against the writer's
// RAM mirror. ns/op is therefore the full write-seal-reload round trip.
func BenchmarkFileSeal(b *testing.B) {
	const epochs, perEpoch = 16, 512
	for i := 0; i < b.N; i++ {
		dir := filepath.Join(b.TempDir(), "store")
		st, err := experiments.FilePlaneProfile(dir, epochs, perEpoch, 4, 42)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(st.BytesOnDisk), "store-bytes")
			b.ReportMetric(float64(st.BytesOnDisk)/float64(st.DeltaRecords), "bytes/burst")
		}
	}
}

// BenchmarkFileSealFaulted runs the same write-seal-reload round trip over
// a fault-injecting in-memory filesystem with a transient short-write
// schedule (the only class the retry policy fully absorbs, so the store
// still round-trips clean). Compared against BenchmarkFileSeal it bounds
// the cost of the VFS seam plus fault bookkeeping and resumed writes; the
// faults/op metric keeps the injection rate visible so a quiet schedule
// can't fake a cheap retry path.
func BenchmarkFileSealFaulted(b *testing.B) {
	const epochs, perEpoch = 16, 512
	for i := 0; i < b.N; i++ {
		ffs := fault.NewFaultFS(fault.NewMemFS(), fault.DiskConfig{Seed: 42, ShortPer100: 35})
		st, err := experiments.FilePlaneProfileFS(ffs, "store", epochs, perEpoch, 4, 42)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(st.BytesOnDisk), "store-bytes")
			b.ReportMetric(float64(len(ffs.Events())), "faults/op")
		}
	}
}

// traceBenchBlock generates the access stream the trace codec benchmarks
// run on: one million accesses mirroring a driver stream — 16 threads,
// line-aligned addresses over a 16 MB span, half stores with monotonic
// payload tokens.
func traceBenchBlock() []trace.Access {
	rng := sim.NewRNG(42)
	block := make([]trace.Access, 1<<20)
	var token uint64
	for i := range block {
		a := trace.Access{
			Tid:  int(rng.Uint64n(16)),
			Addr: (1 << 30) + rng.Uint64n(1<<18)<<6,
		}
		if rng.Uint64n(100) < 50 {
			token++
			a.Write = true
			a.Data = token
		}
		block[i] = a
	}
	return block
}

var traceBenchShape = tracefile.Shape{Cores: 16, CoresPerVD: 4, LineSize: 64, Seed: 42}

// BenchmarkTraceEncode measures TRC1 encode throughput: a million-access
// stream delta/varint-encoded into an in-memory trace file per iteration.
func BenchmarkTraceEncode(b *testing.B) {
	block := traceBenchBlock()
	fsys := fault.NewMemFS()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := tracefile.Create(fsys, "bench.trc", traceBenchShape)
		if err != nil {
			b.Fatal(err)
		}
		for _, a := range block {
			if err := w.Append(a); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(block))*float64(b.N)/b.Elapsed().Seconds(), "accesses/sec")
}

// BenchmarkTraceDecode measures TRC1 decode throughput: the same
// million-access trace encoded once, then streamed back per iteration.
func BenchmarkTraceDecode(b *testing.B) {
	block := traceBenchBlock()
	fsys := fault.NewMemFS()
	w, err := tracefile.Create(fsys, "bench.trc", traceBenchShape)
	if err != nil {
		b.Fatal(err)
	}
	for _, a := range block {
		if err := w.Append(a); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := tracefile.OpenReader(fsys, "bench.trc")
		if err != nil {
			b.Fatal(err)
		}
		var decoded uint64
		for {
			if _, err := r.Next(); err != nil {
				if err != io.EOF {
					b.Fatal(err)
				}
				break
			}
			decoded++
		}
		if decoded != uint64(len(block)) {
			b.Fatalf("decoded %d of %d records", decoded, len(block))
		}
		if err := r.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(block))*float64(b.N)/b.Elapsed().Seconds(), "accesses/sec")
}

// BenchmarkWrapAround exercises the 16-bit epoch wrap-around path
// (§IV-D) under a narrow 6-bit wire width so group transitions are
// frequent.
func BenchmarkWrapAround(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.Run("NVOverlay", "btree", experiments.Smoke, func(c *sim.Config) {
			c.WrapEpochs = true
			c.WrapWidth = 6
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
